module Bitset = Ucfg_util.Bitset

(* the maximal biclique containing all of column c: its rows are those
   with a 1 at c, its columns the ones those rows share *)
let grow_column m c =
  let rows = ref [] in
  for r = 0 to Matrix.rows m - 1 do
    if Matrix.get m r c then rows := r :: !rows
  done;
  match !rows with
  | [] -> ([], [])
  | first :: rest ->
    let cols =
      List.fold_left
        (fun acc r -> Bitset.inter acc (Matrix.row m r))
        (Matrix.row m first) rest
    in
    (List.rev !rows, Bitset.elements cols)

(* the maximal biclique containing all of row r *)
let grow_row m r =
  let cols = Matrix.row m r in
  if Bitset.is_empty cols then ([], [])
  else begin
    let rows = ref [] in
    for r' = 0 to Matrix.rows m - 1 do
      if Bitset.subset cols (Matrix.row m r') then rows := r' :: !rows
    done;
    (List.rev !rows, Bitset.elements cols)
  end

let greedy_cover m =
  let covered =
    Array.init (Matrix.rows m) (fun _ -> Bitset.create (Matrix.cols m))
  in
  (* candidates carry their column set as a bitset: the per-round gain is a
     popcount of (cols \ covered) per member row instead of a per-entry
     membership scan *)
  let candidates () =
    List.map (grow_column m) (Ucfg_util.Prelude.range 0 (Matrix.cols m))
    @ List.map (grow_row m) (Ucfg_util.Prelude.range 0 (Matrix.rows m))
  in
  let all_candidates =
    List.map
      (fun (rows, cols) -> (rows, cols, Bitset.of_list (Matrix.cols m) cols))
      (candidates ())
  in
  let uncovered_in (rows, cols_bs) =
    List.fold_left
      (fun acc r -> acc + Bitset.cardinal_diff cols_bs covered.(r))
      0 rows
  in
  (* lazy greedy: gains only decrease as [covered] grows, so cached gains
     over-estimate true ones.  Each round recomputes the lowest-indexed
     cached maximum until it confirms; a confirmed candidate has the
     maximum true gain, and any lower-indexed candidate with the same true
     gain would also hold the cached maximum — so the selection (and its
     tie-breaking) is exactly the eager scan's. *)
  let cands = Array.of_list all_candidates in
  let cached =
    Array.map (fun (rows, _, cols_bs) -> uncovered_in (rows, cols_bs)) cands
  in
  let bicliques = ref [] in
  let remaining = ref (Matrix.ones m) in
  while !remaining > 0 do
    let rec pick () =
      let best = ref (-1) in
      Array.iteri
        (fun i g -> if g > 0 && (!best < 0 || g > cached.(!best)) then best := i)
        cached;
      (* should not happen: every 1-entry lies in some column biclique *)
      assert (!best >= 0);
      let i = !best in
      let rows, _, cols_bs = cands.(i) in
      let g = uncovered_in (rows, cols_bs) in
      if g = cached.(i) then i
      else begin
        cached.(i) <- g;
        pick ()
      end
    in
    let i = pick () in
    let rows, cols, cols_bs = cands.(i) in
    List.iter (fun r -> covered.(r) <- Bitset.union covered.(r) cols_bs) rows;
    remaining := !remaining - cached.(i);
    cached.(i) <- 0;
    bicliques := (rows, cols) :: !bicliques
  done;
  List.rev !bicliques

let is_cover m bicliques =
  (* inside the ones *)
  List.for_all
    (fun (rows, cols) ->
       List.for_all
         (fun r -> List.for_all (fun c -> Matrix.get m r c) cols)
         rows)
    bicliques
  && begin
    (* covering *)
    let covered =
      Array.init (Matrix.rows m) (fun _ -> Bitset.create (Matrix.cols m))
    in
    List.iter
      (fun (rows, cols) ->
         let cs = Bitset.of_list (Matrix.cols m) cols in
         List.iter (fun r -> covered.(r) <- Bitset.union covered.(r) cs) rows)
      bicliques;
    let ok = ref true in
    for r = 0 to Matrix.rows m - 1 do
      if not (Bitset.subset (Matrix.row m r) covered.(r)) then ok := false
    done;
    !ok
  end

let cover_number_bounds m =
  (List.length (Fooling.greedy m), List.length (greedy_cover m))
