module Bitset = Ucfg_util.Bitset

let gf2 m =
  let rows = Matrix.rows m and cols = Matrix.cols m in
  (* copy rows and eliminate *)
  let work = Array.init rows (fun i -> Bitset.Mut.copy (Matrix.row m i)) in
  let rank = ref 0 in
  (* pivot_row_of_col.(c) = eliminated row whose leading column is c, or
     -1: pivot lookup is O(1) instead of a scan over earlier rows *)
  let pivot_row_of_col = Array.make cols (-1) in
  for i = 0 to rows - 1 do
    (* after xoring away the leading 1 at column c, the next leading 1 is
       strictly beyond c, so each scan resumes where the last stopped *)
    let rec reduce from =
      match Bitset.Mut.lowest_set_from work.(i) from with
      | None -> ()
      | Some c -> (
          match pivot_row_of_col.(c) with
          | -1 ->
            pivot_row_of_col.(c) <- i;
            incr rank
          | r ->
            Bitset.Mut.xor_in_place work.(i) work.(r);
            reduce (c + 1))
    in
    reduce 0
  done;
  !rank

let mod_p ?(p = (1 lsl 31) - 1) m =
  let rows = Matrix.rows m and cols = Matrix.cols m in
  let work =
    Array.init rows (fun i ->
        Array.init cols (fun j -> if Matrix.get m i j then 1 else 0))
  in
  (* Gaussian elimination over Z_p; p < 2^31 keeps products in range *)
  let rank = ref 0 in
  let r = ref 0 in
  let modinv a =
    (* Fermat: a^(p-2) mod p *)
    let rec power b e acc =
      if e = 0 then acc
      else power (b * b mod p) (e asr 1) (if e land 1 = 1 then acc * b mod p else acc)
    in
    power a (p - 2) 1
  in
  let c = ref 0 in
  while !r < rows && !c < cols do
    (* find pivot in column c at or below row r *)
    let piv = ref (-1) in
    for i = !r to rows - 1 do
      if !piv < 0 && work.(i).(!c) <> 0 then piv := i
    done;
    if !piv < 0 then incr c
    else begin
      let tmp = work.(!r) in
      work.(!r) <- work.(!piv);
      work.(!piv) <- tmp;
      let inv = modinv work.(!r).(!c) in
      for j = !c to cols - 1 do
        work.(!r).(j) <- work.(!r).(j) * inv mod p
      done;
      for i = 0 to rows - 1 do
        if i <> !r && work.(i).(!c) <> 0 then begin
          let f = work.(i).(!c) in
          for j = !c to cols - 1 do
            work.(i).(j) <- ((work.(i).(j) - (f * work.(!r).(j) mod p)) mod p + p) mod p
          done
        end
      done;
      incr rank;
      incr r;
      incr c
    end
  done;
  !rank

let disjoint_cover_lower_bound m = max (gf2 m) (mod_p m)
