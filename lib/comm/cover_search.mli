(** Exact minimum disjoint rectangle covers for tiny instances.

    Proposition 16 lower-bounds disjoint covers asymptotically; this
    module computes ground truth for small [n] by iterative-deepening
    search: cover the target mask-set with balanced ordered set
    rectangles, pairwise disjoint, of minimum number.  The branching
    enumerates the maximal rectangles (per balanced ordered partition)
    that contain the smallest uncovered element and stay inside the
    remaining set.  A work budget keeps it total. *)

type outcome =
  | Exact of int  (** the minimum disjoint cover size *)
  | Budget_exhausted of int
      (** search aborted; the argument is a proven lower bound (all
          smaller sizes were refuted before the budget ran out) *)
  | Interrupted of int * Ucfg_exec.Guard.reason
      (** the guard tripped (deadline, tick budget or cancellation); the
          argument is the same proven lower bound as above *)

(** [minimum ?guard ~n target] — the target is a list of masks (words of
    length [2n]); typically [L_n]'s codes.  [budget] caps the number of
    search nodes (default [2_000_000]); [guard] (default
    {!Ucfg_exec.Exec.current_guard}) is polled at every node and turns a
    trip into [Interrupted] instead of raising. *)
val minimum : ?guard:Ucfg_exec.Guard.t -> ?budget:int -> n:int -> int list -> outcome

(** [minimum_ln ?guard ?budget n] — specialised to [L_n]. *)
val minimum_ln : ?guard:Ucfg_exec.Guard.t -> ?budget:int -> int -> outcome
