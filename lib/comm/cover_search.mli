(** Exact minimum disjoint rectangle covers for tiny instances.

    Proposition 16 lower-bounds disjoint covers asymptotically; this
    module computes ground truth for small [n] by iterative-deepening
    search: cover the target mask-set with balanced ordered set
    rectangles, pairwise disjoint, of minimum number.  The branching
    enumerates the maximal rectangles (per balanced ordered partition)
    that contain the smallest uncovered element and stay inside the
    remaining set.  A work budget keeps it total.

    Iterative deepening re-proves the same subproblems at every depth
    bound, so the search keeps a transposition table over
    [(remaining, k)] subtree verdicts and a per-[(partition, remaining)]
    cache of generated candidate rectangles (both on by default via
    [?memo]).  Verdicts are deterministic in their key, so memoisation
    never changes an outcome — it only skips re-deriving it, which also
    means a memoised run can reach an [Exact] answer within a budget
    that a memo-free run exhausts.

    With a [?checkpoint] directory, a run interrupted by the guard or
    the node budget persists its refuted-size cursor and transposition
    entries ({!Ucfg_exec.Checkpoint} format); [~resume:true] reloads
    them and continues — already-refuted sizes are skipped and recorded
    subtree verdicts are not re-derived.  Damaged or mismatched
    checkpoints degrade to a fresh run with a warning. *)

type outcome =
  | Exact of int  (** the minimum disjoint cover size *)
  | Budget_exhausted of int
      (** search aborted; the argument is a proven lower bound (all
          smaller sizes were refuted before the budget ran out) *)
  | Interrupted of int * Ucfg_exec.Guard.reason
      (** the guard tripped (deadline, tick budget or cancellation); the
          argument is the same proven lower bound as above *)

type run = {
  outcome : outcome;
  nodes : int;  (** search nodes ticked by this run (resumes restart at 0) *)
  memo_hits : int;  (** transposition-table hits (0 with [~memo:false]) *)
  memo_misses : int;
  resumed : bool;  (** a valid checkpoint was loaded and continued *)
  checkpoint_written : string option;
      (** path of the checkpoint written on interruption or budget
          exhaustion, if any *)
  checkpoint_warning : string option;
      (** set when a requested resume degraded to a fresh run *)
}

(** [minimum ?guard ~n target] — the target is a list of masks (words of
    length [2n]); typically [L_n]'s codes.  [budget] caps the number of
    search nodes (default [2_000_000]); [guard] (default
    {!Ucfg_exec.Exec.current_guard}) is polled at every node and turns a
    trip into [Interrupted] instead of raising. *)
val minimum :
  ?guard:Ucfg_exec.Guard.t ->
  ?budget:int ->
  ?memo:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  n:int ->
  int list ->
  outcome

(** [minimum_run] is {!minimum} with the full run record: node count,
    transposition statistics and checkpoint/resume status. *)
val minimum_run :
  ?guard:Ucfg_exec.Guard.t ->
  ?budget:int ->
  ?memo:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  n:int ->
  int list ->
  run

(** [minimum_ln ?guard ?budget n] — specialised to [L_n]. *)
val minimum_ln : ?guard:Ucfg_exec.Guard.t -> ?budget:int -> int -> outcome
