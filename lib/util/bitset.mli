(** Dense bitsets over a fixed universe [{0, ..., size-1}].

    The rectangle machinery works with subsets of [Z = [1..2n]] and the
    GF(2) rank computation works with matrix rows of a few thousand columns;
    both want compact bit-level sets with fast boolean operations.  Values
    are immutable from the outside: every operation returns a fresh set
    (mutation is confined to the implementation). *)

type t

(** [create size] is the empty set over a universe of [size] elements. *)
val create : int -> t

(** [full size] is the complete universe. *)
val full : int -> t

(** Number of elements in the universe (not the cardinality). *)
val size : t -> int

val mem : t -> int -> bool

(** [add t i] is [t ∪ {i}].  @raise Invalid_argument if [i] is out of range. *)
val add : t -> int -> t

(** [remove t i] is [t \ {i}]. *)
val remove : t -> int -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** Complement within the universe. *)
val complement : t -> t

val cardinal : t -> int

(** [cardinal_diff a b] is [cardinal (diff a b)] without building the
    intermediate set — the popcount step of the greedy cover loops. *)
val cardinal_diff : t -> t -> int
val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool
val disjoint : t -> t -> bool

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t

(** [of_mask size mask] interprets the low [size] bits of [mask] as a set.
    Requires [size <= 62]. *)
val of_mask : int -> int -> t

(** [to_mask t] packs the set into an [int] bit mask.  Requires
    [size t <= 62]. *)
val to_mask : t -> int

val hash : t -> int
val pp : Format.formatter -> t -> unit

(** In-place interface used by hot loops (GF(2) elimination).  These mutate
    their first argument; callers own the value exclusively. *)
module Mut : sig
  val copy : t -> t
  val xor_in_place : t -> t -> unit
  val set : t -> int -> unit
  val lowest_set : t -> int option

  (** [lowest_set_from t i] is the lowest set bit with index [>= i] — what
      the elimination kernel uses to resume a pivot scan where the last xor
      left off instead of rescanning from word 0. *)
  val lowest_set_from : t -> int -> int option
end
