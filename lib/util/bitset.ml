(* Bitsets as arrays of 62-bit words (we stay clear of the native int's sign
   bit so that masks and shifts need no special cases). *)

let bits_per_word = 62

type t = { size : int; words : int array }

let nwords size = (size + bits_per_word - 1) / bits_per_word

let create size =
  if size < 0 then invalid_arg "Bitset.create: negative size";
  { size; words = Array.make (nwords size) 0 }

let size t = t.size

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Bitset: index out of range"

(* Mask selecting the valid bits of the last word. *)
let tail_mask size =
  let rem = size mod bits_per_word in
  if rem = 0 then (1 lsl bits_per_word) - 1 else (1 lsl rem) - 1

let full size =
  let t = create size in
  let n = Array.length t.words in
  if n > 0 then begin
    Array.fill t.words 0 n ((1 lsl bits_per_word) - 1);
    t.words.(n - 1) <- tail_mask size
  end;
  t

let mem t i =
  check t i;
  (t.words.(i / bits_per_word) lsr (i mod bits_per_word)) land 1 = 1

let copy t = { t with words = Array.copy t.words }

let add t i =
  check t i;
  let r = copy t in
  r.words.(i / bits_per_word) <-
    r.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word));
  r

let remove t i =
  check t i;
  let r = copy t in
  r.words.(i / bits_per_word) <-
    r.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word));
  r

let zip_words op a b =
  if a.size <> b.size then invalid_arg "Bitset: size mismatch";
  let r = copy a in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <- op r.words.(i) b.words.(i)
  done;
  r

let union a b = zip_words ( lor ) a b
let inter a b = zip_words ( land ) a b
let diff a b = zip_words (fun x y -> x land lnot y) a b

let complement t =
  let r = copy t in
  let n = Array.length r.words in
  for i = 0 to n - 1 do
    r.words.(i) <- lnot r.words.(i) land ((1 lsl bits_per_word) - 1)
  done;
  if n > 0 then r.words.(n - 1) <- r.words.(n - 1) land tail_mask t.size;
  r

(* table-driven popcount: four 16-bit lookups per word, constant time even
   on dense words (the Kernighan loop is O(set bits), which is the wrong
   trade for the near-full rows the greedy covers chew through) *)
let pop16 =
  let count i =
    let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
    go i 0
  in
  Bytes.init 65536 (fun i -> Char.chr (count i))

let popcount w =
  Char.code (Bytes.unsafe_get pop16 (w land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 (w lsr 48))

(* index of the only set bit of the power of two [bit] *)
let bit_index bit = popcount (bit - 1)

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let cardinal_diff a b =
  if a.size <> b.size then invalid_arg "Bitset.cardinal_diff: size mismatch";
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land lnot b.words.(i))
  done;
  !acc

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.size = b.size && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.size b.size in
  if c <> 0 then c else Stdlib.compare a.words b.words

let subset a b =
  if a.size <> b.size then invalid_arg "Bitset.subset: size mismatch";
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let disjoint a b =
  if a.size <> b.size then invalid_arg "Bitset.disjoint: size mismatch";
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land b.words.(i) <> 0 then ok := false
  done;
  !ok

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let bit = !word land (- !word) in
      f ((w * bits_per_word) + bit_index bit);
      word := !word land lnot bit
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list size l =
  let t = create size in
  List.iter
    (fun i ->
       check t i;
       t.words.(i / bits_per_word) <-
         t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word)))
    l;
  t

let of_mask size mask =
  if size > bits_per_word then invalid_arg "Bitset.of_mask: size too large";
  let t = create size in
  if Array.length t.words > 0 then t.words.(0) <- mask land tail_mask size;
  t

let to_mask t =
  if t.size > bits_per_word then invalid_arg "Bitset.to_mask: size too large";
  if Array.length t.words = 0 then 0 else t.words.(0)

let hash t = Hashtbl.hash (t.size, t.words)

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (elements t)))

module Mut = struct
  let copy = copy

  let xor_in_place a b =
    if a.size <> b.size then invalid_arg "Bitset.Mut.xor_in_place: size mismatch";
    for i = 0 to Array.length a.words - 1 do
      a.words.(i) <- a.words.(i) lxor b.words.(i)
    done

  let set t i =
    check t i;
    t.words.(i / bits_per_word) <-
      t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

  let lowest_set t =
    let n = Array.length t.words in
    let rec go w =
      if w >= n then None
      else if t.words.(w) = 0 then go (w + 1)
      else begin
        let bit = t.words.(w) land (-t.words.(w)) in
        Some ((w * bits_per_word) + bit_index bit)
      end
    in
    go 0

  let lowest_set_from t i =
    if i < 0 then invalid_arg "Bitset.Mut.lowest_set_from: negative index";
    let n = Array.length t.words in
    let w0 = i / bits_per_word in
    if w0 >= n then None
    else begin
      let rec go w masked =
        if w >= n then None
        else begin
          let word =
            if masked then t.words.(w) land lnot ((1 lsl (i mod bits_per_word)) - 1)
            else t.words.(w)
          in
          if word = 0 then go (w + 1) false
          else begin
            let bit = word land (-word) in
            Some ((w * bits_per_word) + bit_index bit)
          end
        end
      in
      go w0 true
    end
end
