# Development entry points.  `make check` is the full gate: build
# everything, run the test suites, then dogfood the linter on the paper's
# grammars and the example files (expected-ambiguous inputs must exit 1,
# expected-clean ones must exit 0).  `make ci` mirrors the GitHub workflow:
# check plus the bench smoke run and the parallel-determinism diff.

CLI := dune exec --no-build -- bin/ucfg_cli.exe
BENCH := dune exec --no-build -- bench/main.exe

# experiments with fully deterministic output (e24/e25/e26/e27/timings
# print wall-clock numbers and are excluded from the determinism diffs)
DET_EXPERIMENTS := e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 e16 \
  e17 e18 e19 e20 e21 e22 e23 e29 e30 e31

.PHONY: build test lint bench smoke determinism json-determinism \
  bench-record bench-compare chaos timeout-smoke search-resume-smoke \
  check-smoke serve-smoke serve-drain-smoke serve-chaos ci check clean

build:
	dune build @all

test:
	dune runtest

lint: build
	$(CLI) lint --list
	@echo "-- example4 n=4 (unambiguous construction, must pass)"
	$(CLI) lint --kind example4 -n 4
	@echo "-- trivial n=3 (one rule per word, must pass)"
	$(CLI) lint --kind trivial -n 3
	@echo "-- log n=6 (Appendix A, ambiguous: lint must exit 1)"
	! $(CLI) lint --kind log -n 6
	@echo "-- example3 t=2 (KMN grammar, ambiguous: lint must exit 1)"
	! $(CLI) lint --kind example3 -n 2
	@echo "-- example grammar files"
	$(CLI) lint --from-file examples/grammars/unambiguous_pairs.cfg
	! $(CLI) lint --from-file examples/grammars/ambiguous_dup.cfg
	@echo "-- Theorem 1(2) NFA (ambiguous: lint must exit 1)"
	! $(CLI) lint --nfa -n 6

bench:
	dune exec bench/main.exe e24

smoke: build
	$(BENCH) --smoke

# the pooled paths must print bit-identical output at any job count
determinism: build
	@mkdir -p _build/determinism
	UCFG_JOBS=1 $(BENCH) --smoke $(DET_EXPERIMENTS) > _build/determinism/seq.out
	UCFG_JOBS=4 $(BENCH) --smoke $(DET_EXPERIMENTS) > _build/determinism/par.out
	diff _build/determinism/seq.out _build/determinism/par.out
	UCFG_JOBS=4 dune runtest --force
	@echo "determinism: OK"

# the --json records must carry the same per-experiment checksums at any
# job count (wall-clock and the jobs field are normalised away)
json-determinism: build
	@mkdir -p _build/determinism
	UCFG_JOBS=1 $(BENCH) --smoke --json-out _build/determinism/seq.json \
	  $(DET_EXPERIMENTS) > /dev/null
	UCFG_JOBS=4 $(BENCH) --smoke --json-out _build/determinism/par.json \
	  $(DET_EXPERIMENTS) > /dev/null
	sed -e 's/"ms": [0-9.]*/"ms": X/' -e 's/"jobs": [0-9]*/"jobs": X/' \
	  _build/determinism/seq.json > _build/determinism/seq.norm.json
	sed -e 's/"ms": [0-9.]*/"ms": X/' -e 's/"jobs": [0-9]*/"jobs": X/' \
	  _build/determinism/par.json > _build/determinism/par.norm.json
	diff _build/determinism/seq.norm.json _build/determinism/par.norm.json
	@echo "json-determinism: OK"

# regenerate this PR's perf record under the same conditions as the
# committed BENCH_pr8.json baseline (smoke, sequential)
bench-record: build
	UCFG_JOBS=1 $(BENCH) --smoke --json-out BENCH_pr9.json > /dev/null

# checksum drift gate: the deterministic experiments in BENCH_pr9.json
# must carry byte-identical output checksums to the BENCH_pr8.json
# baseline (e33 is new in pr9: compared on e1–e23, e29–e33 asserted
# present)
bench-compare:
	@mkdir -p _build/determinism
	@for pr in pr8 pr9; do \
	  sed -n 's/ *{ "name": "\(e[0-9]*\)", "ms": [0-9.]*, "checksum": "\([0-9a-f]*\)".*/\1 \2/p' \
	    BENCH_$$pr.json | grep -E '^e([1-9]|1[0-9]|2[0-3]) ' | sort \
	    > _build/determinism/$$pr.sums; \
	done
	diff _build/determinism/pr8.sums _build/determinism/pr9.sums
	@for e in e29 e30 e31 e32 e33; do \
	  grep -q "\"name\": \"$$e\"" BENCH_pr9.json || \
	    { echo "bench-compare: $$e missing from BENCH_pr9.json"; exit 1; }; \
	done
	@echo "bench-compare: OK"

# the full suite must stay green under seeded fault injection: injected
# faults are repaired deterministically by the pool's settle phase, so
# chaos exercises the capture/cancel/drain machinery without changing any
# verdict.  Two fixed seeds, 10% injection, 4 domains.
chaos: build
	UCFG_CHAOS=1066:0.1 UCFG_JOBS=4 dune runtest --force
	UCFG_CHAOS=424242:0.1 UCFG_JOBS=4 dune runtest --force
	@echo "chaos: OK"

# a cooperative deadline on an hours-deep search must exit 124 promptly
# (the GNU timeout convention) at any job count, reporting partial progress
timeout-smoke: build
	@for j in 1 4; do \
	  start=$$(date +%s); \
	  $(CLI) search -n 3 --timeout 1 --jobs $$j; st=$$?; \
	  el=$$(( $$(date +%s) - start )); \
	  if [ $$st -ne 124 ]; then \
	    echo "timeout-smoke: expected exit 124 at jobs=$$j, got $$st"; exit 1; fi; \
	  if [ $$el -gt 3 ]; then \
	    echo "timeout-smoke: took $${el}s at jobs=$$j (limit 3s)"; exit 1; fi; \
	done
	@echo "timeout-smoke: OK"

# an interrupted search must leave a resumable checkpoint: trip the run
# with a tight guard budget (exit 124, checkpoint on disk), resume it
# slice by slice to completion, and the final verdict and replayed node
# count must equal an uninterrupted run's byte for byte
search-resume-smoke: build
	@rm -rf _build/resume && mkdir -p _build/resume
	@$(CLI) search -n 2 --max-nonterminals 2 --budget 80000 \
	  --checkpoint-dir _build/resume --json > _build/resume/slice.json; \
	st=$$?; if [ $$st -ne 124 ]; then \
	  echo "search-resume-smoke: expected exit 124, got $$st"; exit 1; fi
	@ls _build/resume/*/checkpoint > /dev/null || \
	  { echo "search-resume-smoke: no checkpoint written"; exit 1; }
	@i=0; while :; do \
	  $(CLI) search -n 2 --max-nonterminals 2 --budget 80000 \
	    --checkpoint-dir _build/resume --resume --json \
	    > _build/resume/final.json && break; \
	  i=$$((i+1)); if [ $$i -gt 20 ]; then \
	    echo "search-resume-smoke: did not converge in 20 slices"; exit 1; fi; \
	done
	@grep -q '"resumed": true' _build/resume/final.json || \
	  { echo "search-resume-smoke: final slice did not resume"; exit 1; }
	@$(CLI) search -n 2 --max-nonterminals 2 --no-checkpoint --json \
	  > _build/resume/whole.json
	@for f in final whole; do \
	  sed -n 's/.*"minimal_size": \([^,]*\), "nodes_explored": \([0-9]*\), "budget_exhausted": \([a-z]*\).*/\1 \2 \3/p' \
	    _build/resume/$$f.json > _build/resume/$$f.fields; \
	done
	diff _build/resume/final.fields _build/resume/whole.fields
	@echo "search-resume-smoke: OK"

# dogfood `ucfg check` on the examples/ grammar pairs: every exit code is
# asserted (0 holds, 1 fails-with-witness, 2 bad input, 124 guard trip),
# and the JSON verdict must be byte-identical at jobs 1 and 4
check-smoke: build
	@echo "-- universality (counting backend on the certified grammar)"
	$(CLI) check --from-file examples/grammars/full_len2.cfg --universal
	! $(CLI) check --from-file examples/grammars/unambiguous_pairs.cfg --universal
	@echo "-- inclusion both ways (witness on the failing direction)"
	$(CLI) check --from-file examples/grammars/subset_pair.cfg \
	  --includes examples/grammars/unambiguous_pairs.cfg
	! $(CLI) check --from-file examples/grammars/unambiguous_pairs.cfg \
	  --includes examples/grammars/subset_pair.cfg
	@echo "-- equivalence of the two L_4 constructions, with cross-check"
	$(CLI) check --kind log -n 4 --equiv trivial:4 --cross-check
	! $(CLI) check --kind log -n 4 --equiv trivial:3
	@echo "-- disjointness"
	$(CLI) check --from-file examples/grammars/unambiguous_pairs.cfg \
	  --disjoint examples/grammars/disjoint_pair.cfg
	! $(CLI) check --from-file examples/grammars/full_len2.cfg \
	  --disjoint examples/grammars/disjoint_pair.cfg
	@echo "-- usage errors exit 2"
	$(CLI) check --kind log -n 4; test $$? -eq 2
	@echo "-- guard trip exits 124 with a partial verdict"
	$(CLI) check --kind log -n 6 --universal --budget 3; test $$? -eq 124
	@echo "-- JSON verdicts byte-identical at jobs 1 vs 4"
	@mkdir -p _build/determinism
	$(CLI) check --kind log -n 4 --equiv trivial:4 --json --jobs 1 \
	  > _build/determinism/check1.json
	$(CLI) check --kind log -n 4 --equiv trivial:4 --json --jobs 4 \
	  > _build/determinism/check4.json
	diff _build/determinism/check1.json _build/determinism/check4.json
	@echo "check-smoke: OK"

# the serving gate: a daemon on a unix socket, bombarded with the smoke
# profile at jobs 1 and 4.  bombard itself fails on any error response or
# on two responses to the same request differing byte-wise (cold vs warm,
# mem vs disk), and --assert-warm-hits requires a nonzero warm-phase hit
# ratio; the dumps (cache key + result payload per distinct request) must
# additionally be byte-identical across job counts
serve-smoke: build
	@mkdir -p _build/serve
	@set -e; for j in 1 4; do \
	  rm -rf _build/serve/cache$$j _build/serve/sock$$j; \
	  UCFG_JOBS=$$j $(CLI) serve --socket _build/serve/sock$$j \
	    --cache-dir _build/serve/cache$$j & pid=$$!; \
	  i=0; while [ ! -S _build/serve/sock$$j ] && [ $$i -lt 100 ]; do \
	    sleep 0.1; i=$$((i+1)); done; \
	  UCFG_JOBS=$$j $(CLI) bombard --smoke --socket _build/serve/sock$$j \
	    --assert-warm-hits --shutdown --dump _build/serve/dump$$j.txt \
	    --json-out _build/serve/bombard$$j.json; \
	  wait $$pid; \
	done
	diff _build/serve/dump1.txt _build/serve/dump4.txt
	@echo "serve-smoke: OK"

# SIGTERM must drain, not drop: boot a daemon, park a multi-second request
# in flight (rank example4:10 runs ~4 s cold), TERM the daemon mid-request,
# and require (a) the in-flight client still receives its response and
# (b) the daemon exits 0 (graceful drain, not a crash or a kill)
serve-drain-smoke: build
	@set -e; rm -rf _build/drain; mkdir -p _build/drain; \
	$(CLI) serve --socket _build/drain/sock --cache-dir _build/drain/cache \
	  --drain-timeout-ms 30000 & pid=$$!; \
	i=0; while [ ! -S _build/drain/sock ] && [ $$i -lt 100 ]; do \
	  sleep 0.1; i=$$((i+1)); done; \
	$(CLI) bombard --socket _build/drain/sock \
	  --request '{"op": "rank", "kind": "example4", "n": 10}' \
	  > _build/drain/resp.txt & cpid=$$!; \
	sleep 1; \
	kill -TERM $$pid; \
	wait $$cpid || { echo "serve-drain-smoke: in-flight client failed"; \
	  kill -9 $$pid 2> /dev/null; exit 1; }; \
	wait $$pid; st=$$?; \
	if [ $$st -ne 0 ]; then \
	  echo "serve-drain-smoke: daemon exited $$st, want 0"; exit 1; fi
	@grep -q '"ok": true' _build/drain/resp.txt || \
	  { echo "serve-drain-smoke: in-flight request not answered ok"; \
	    cat _build/drain/resp.txt; exit 1; }
	@echo "serve-drain-smoke: OK"

# the adversarial serving gate: seeded socket chaos (partial writes,
# aborts, malformed and oversized frames, slow-loris stalls past the read
# deadline, concurrent bursts through a 2-worker daemon) at jobs 1 and 4.
# The daemon must survive every round and still answer, sheds must carry
# R013 and be absorbed by retry, and the post-chaos cache contents must be
# byte-identical across job counts AND to a chaos-free smoke run
serve-chaos: build
	@set -e; rm -rf _build/chaos; mkdir -p _build/chaos; \
	for j in 1 4; do \
	  UCFG_JOBS=$$j $(CLI) serve --socket _build/chaos/sock$$j \
	    --cache-dir _build/chaos/cache$$j --max-connections 2 \
	    --idle-timeout-ms 400 --max-request-bytes 4096 & pid=$$!; \
	  i=0; while [ ! -S _build/chaos/sock$$j ] && [ $$i -lt 100 ]; do \
	    sleep 0.1; i=$$((i+1)); done; \
	  UCFG_JOBS=$$j $(CLI) bombard --chaos --seed 1066 --stall-ms 900 \
	    --oversize-bytes 8192 --socket _build/chaos/sock$$j \
	    --dump _build/chaos/chaosdump$$j.txt \
	    --json-out _build/chaos/chaos$$j.json --shutdown; \
	  wait $$pid; \
	done; \
	rm -rf _build/chaos/plaincache _build/chaos/plainsock; \
	$(CLI) serve --socket _build/chaos/plainsock \
	  --cache-dir _build/chaos/plaincache & pid=$$!; \
	i=0; while [ ! -S _build/chaos/plainsock ] && [ $$i -lt 100 ]; do \
	  sleep 0.1; i=$$((i+1)); done; \
	$(CLI) bombard --smoke --socket _build/chaos/plainsock --shutdown \
	  --dump _build/chaos/plaindump.txt > /dev/null; \
	wait $$pid
	diff _build/chaos/chaosdump1.txt _build/chaos/chaosdump4.txt
	diff _build/chaos/chaosdump1.txt _build/chaos/plaindump.txt
	@echo "serve-chaos: OK"

check: build test lint check-smoke
	@echo "check: OK"

ci: check smoke determinism json-determinism bench-record bench-compare \
  chaos timeout-smoke search-resume-smoke serve-smoke serve-drain-smoke \
  serve-chaos
	@echo "ci: OK"

clean:
	dune clean
