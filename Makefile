# Development entry points.  `make check` is the full gate: build
# everything, run the test suites, then dogfood the linter on the paper's
# grammars and the example files (expected-ambiguous inputs must exit 1,
# expected-clean ones must exit 0).

CLI := dune exec --no-build -- bin/ucfg_cli.exe

.PHONY: build test lint bench check clean

build:
	dune build @all

test:
	dune runtest

lint: build
	$(CLI) lint --list
	@echo "-- example4 n=4 (unambiguous construction, must pass)"
	$(CLI) lint --kind example4 -n 4
	@echo "-- trivial n=3 (one rule per word, must pass)"
	$(CLI) lint --kind trivial -n 3
	@echo "-- log n=6 (Appendix A, ambiguous: lint must exit 1)"
	! $(CLI) lint --kind log -n 6
	@echo "-- example3 t=2 (KMN grammar, ambiguous: lint must exit 1)"
	! $(CLI) lint --kind example3 -n 2
	@echo "-- example grammar files"
	$(CLI) lint --from-file examples/grammars/unambiguous_pairs.cfg
	! $(CLI) lint --from-file examples/grammars/ambiguous_dup.cfg
	@echo "-- Theorem 1(2) NFA (ambiguous: lint must exit 1)"
	! $(CLI) lint --nfa -n 6

bench:
	dune exec bench/main.exe e24

check: build test lint
	@echo "check: OK"

clean:
	dune clean
