(* The reproduction harness: one section per experiment of DESIGN.md
   (E1..E26), each regenerating the series/rows behind one quantitative
   claim of the paper, followed by Bechamel wall-clock benchmarks of the
   key algorithms (one Test.make per timed table).

   Run with: dune exec bench/main.exe            (all experiments)
             dune exec bench/main.exe -- e7 e11  (a selection)
             dune exec bench/main.exe -- --smoke (CI: smallest n, one
                                                  Bechamel iteration)
             dune exec bench/main.exe -- --jobs 4 e24  (pool size)
             dune exec bench/main.exe -- --smoke --json  (also write
                       per-experiment ms + checksums to BENCH_pr3.json) *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_core
module Bignum = Ucfg_util.Bignum
module Rng = Ucfg_util.Rng

let yes b = if b then "yes" else "NO"

(* --smoke: every experiment at its smallest n, one Bechamel iteration *)
let smoke = ref false
let pick full small = if !smoke then small else full

(* Sweeps over n are embarrassingly parallel: each row of a table is a
   pure computation, so rows are mapped over the Ucfg_exec pool and merged
   back in order.  Experiments that thread a shared Rng through their rows
   keep the sequential map so output stays identical at any job count. *)
let prows f ns = Ucfg_exec.Exec.parallel_map f ns

(* ------------------------------------------------------------------ E1 *)

let e1_cfg_upper () =
  Report.print_table
    ~title:
      "E1 (Thm 1.1 / Appendix A): CFG for L_n of size Θ(log n) — sizes and \
       exactness"
    ~headers:[ "n"; "size"; "size/log2(n)"; "language = L_n" ]
    (prows
       (fun n ->
          let g = Constructions.log_cfg n in
          let checked =
            if n <= 9 then
              yes (Lang.equal (Ln.language n) (Analysis.language_exn g))
            else "-"
          in
          let l = max 1 (Ucfg_util.Prelude.log2_ceil n) in
          [
            string_of_int n;
            string_of_int (Grammar.size g);
            Printf.sprintf "%.1f" (float_of_int (Grammar.size g) /. float_of_int l);
            checked;
          ])
       (pick [ 2; 3; 4; 5; 6; 7; 8; 9; 16; 32; 64; 100; 256; 1000; 4096 ]
          [ 2; 3; 4 ]))

(* ------------------------------------------------------------------ E2 *)

let e2_example3 () =
  Report.print_table
    ~title:
      "E2 (Example 3): the KMN grammar G_t accepts L_{2^t+1}, size Θ(t), \
       ambiguous"
    ~headers:[ "t"; "n = 2^t+1"; "size"; "exact"; "ambiguous" ]
    (prows
       (fun t ->
          let g = Constructions.example3 t in
          let n = (1 lsl t) + 1 in
          let exact =
            if t <= 2 then
              yes (Lang.equal (Ln.language n) (Analysis.language_exn g))
            else "-"
          in
          let amb =
            if t <= 2 then yes (not (Ambiguity.is_unambiguous g)) else "-"
          in
          [ string_of_int t; string_of_int n; string_of_int (Grammar.size g);
            exact; amb ])
       (pick (Ucfg_util.Prelude.range_incl 0 10) [ 0; 1 ]))

(* ------------------------------------------------------------------ E3 *)

let e3_nfa () =
  Report.print_table
    ~title:
      "E3 (Thm 1.2, corrected): NFAs for L_n — our exact NFA is Θ(n²), the \
       certified fooling bound is Ω(n²); the paper's Θ(n) automaton exists \
       for the unbounded pattern only.  Minimal DFAs are exponential."
    ~headers:
      [ "n"; "NFA states"; "NFA trans"; "fooling lb"; "pattern states";
        "min DFA"; "exact" ]
    (prows
       (fun n ->
          let nfa = Ucfg_automata.Ln_nfa.build n in
          let dfa =
            if n <= 5 then
              string_of_int
                (Ucfg_automata.Dfa.state_count
                   (Ucfg_automata.Determinize.minimal_dfa nfa))
            else "-"
          in
          let exact =
            if n <= 6 then
              yes
                (Lang.equal (Ln.language n)
                   (Ucfg_automata.Nfa.language nfa ~max_len:(2 * n)))
            else "-"
          in
          [
            string_of_int n;
            string_of_int (Ucfg_automata.Nfa.state_count nfa);
            string_of_int (Ucfg_automata.Nfa.transition_count nfa);
            string_of_int (Ucfg_automata.Ln_nfa.state_lower_bound n);
            string_of_int
              (Ucfg_automata.Nfa.state_count (Ucfg_automata.Ln_nfa.pattern n));
            dfa;
            exact;
          ])
       (pick [ 1; 2; 3; 4; 5; 6; 8; 12; 16; 24; 32; 48; 64 ] [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ E4 *)

let e4_ucfg_upper () =
  Report.print_table
    ~title:
      "E4 (Example 4, corrected pair enumeration): unambiguous CFG for L_n — \
       size grows 2^Θ(n)"
    ~headers:[ "n"; "size"; "rules"; "exact"; "unambiguous" ]
    (prows
       (fun n ->
          let g = Constructions.example4 n in
          let exact =
            if n <= 6 then
              yes (Lang.equal (Ln.language n) (Analysis.language_exn g))
            else "-"
          in
          let unam = if n <= 6 then yes (Ambiguity.is_unambiguous g) else "-" in
          [
            string_of_int n;
            string_of_int (Grammar.size g);
            string_of_int (Grammar.rule_count g);
            exact;
            unam;
          ])
       (pick (Ucfg_util.Prelude.range_incl 1 13) [ 1; 2; 3 ]));
  Report.print_table
    ~title:
      "E4b (the finding, executable): the paper-literal Example 4 \
       under-generates — missing words per n"
    ~headers:[ "n"; "|L_n|"; "literal generates"; "missing" ]
    (prows
       (fun n ->
          let lit =
            Lang.cardinal
              (Analysis.language_exn (Constructions.example4_literal n))
          in
          let full = Lang.cardinal (Ln.language n) in
          [
            string_of_int n; string_of_int full; string_of_int lit;
            string_of_int (full - lit);
          ])
       (pick [ 1; 2; 3; 4; 5 ] [ 1; 2 ]))

(* ------------------------------------------------------------------ E5 *)

let e5_lemma18 () =
  let enum_counts m =
    let blocks = Ucfg_disc.Blocks.create (4 * m) in
    let n = 4 * m in
    Seq.fold_left
      (fun (a, b, bnl, adv) mask ->
         let in_ln = Ucfg_rect.Setview.in_ln ~n mask in
         if Ucfg_disc.Blocks.in_a blocks mask then
           (a + 1, b, bnl, if in_ln then adv + 1 else adv)
         else
           ( a, b + 1, (if in_ln then bnl else bnl + 1),
             if in_ln then adv - 1 else adv ))
      (0, 0, 0, 0)
      (Ucfg_disc.Blocks.family blocks)
  in
  Report.print_table
    ~title:
      "E5 (Lemma 18): |𝓛| = 2^4m, |B\\L| = 12^m, |B|-|A| = 2^3m, advantage \
       = 12^m - 2^3m; enumerated for m <= 3"
    ~headers:
      [ "m"; "|L| formula"; "|B\\Ln| formula"; "enum ok"; "advantage";
        "> 2^(7m/2)" ]
    (prows
       (fun m ->
          let enum_ok =
            if m <= 3 then begin
              let a, b, bnl, adv = enum_counts m in
              yes
                (Bignum.equal (Ucfg_disc.Counts.a_size ~m) (Bignum.of_int a)
                 && Bignum.equal (Ucfg_disc.Counts.b_size ~m) (Bignum.of_int b)
                 && Bignum.equal (Ucfg_disc.Counts.b_minus_ln ~m)
                      (Bignum.of_int bnl)
                 && Bignum.equal (Ucfg_disc.Counts.advantage ~m)
                      (Bignum.of_int adv))
            end
            else "-"
          in
          [
            string_of_int m;
            Bignum.to_string (Ucfg_disc.Counts.family_size ~m);
            Bignum.to_string (Ucfg_disc.Counts.b_minus_ln ~m);
            enum_ok;
            Bignum.to_string (Ucfg_disc.Counts.advantage ~m);
            (if Ucfg_disc.Counts.advantage_exceeds_threshold ~m then "yes"
             else "no");
          ])
       (pick [ 1; 2; 3; 4; 5; 8; 16; 32 ] [ 1; 2 ]));
  Printf.printf "threshold first holds at m = %d (the paper's 'n sufficiently big')\n\n"
    (Ucfg_disc.Counts.smallest_threshold_m ())

(* ------------------------------------------------------------------ E6 *)

let e6_discrepancy () =
  let rng = Rng.create 20260706 in
  Report.print_table
    ~title:
      "E6 (Lemma 19 / Cor 20): [1,n]-rectangle discrepancy <= 2^3m; the \
       full-family rectangle meets the bound exactly"
    ~headers:[ "m"; "bound 2^3m"; "tight example |d|"; "max over random" ]
    (List.map
       (fun m ->
          let blocks = Ucfg_disc.Blocks.create (4 * m) in
          let tight =
            abs
              (Ucfg_disc.Discrepancy.of_rectangle blocks
                 (Ucfg_disc.Discrepancy.tight_example blocks))
          in
          let partition = Ucfg_rect.Partition.make ~n:(4 * m) 1 (4 * m) in
          let rand =
            Ucfg_disc.Discrepancy.max_over_random blocks ~rng ~samples:30
              ~partition
          in
          [
            string_of_int m;
            Bignum.to_string (Ucfg_disc.Discrepancy.lemma19_bound ~m);
            string_of_int tight;
            string_of_int rand;
          ])
       (pick [ 1; 2; 3 ] [ 1 ]));
  (* Lemma 23 over every neat balanced ordered partition at m = 2 *)
  if not !smoke then begin
  let blocks = Ucfg_disc.Blocks.create 8 in
  let worst = ref 0 in
  List.iter
    (fun p ->
       if Ucfg_rect.Partition.is_neat p then begin
         let d =
           Ucfg_disc.Discrepancy.max_over_random blocks ~rng ~samples:20
             ~partition:p
         in
         if d > !worst then worst := d
       end)
    (Ucfg_rect.Partition.all_balanced ~n:8);
  Printf.printf
    "E6b (Lemma 23): worst random discrepancy over all neat balanced ordered \
     partitions at m=2: %d, within 2^(10m/3) ≈ %.0f: %s\n\n"
    !worst
    (Float.pow 2. (20. /. 3.))
    (yes (Ucfg_disc.Discrepancy.within_lemma23_bound ~m:2 !worst))
  end

(* ------------------------------------------------------------------ E7 *)

let e7_separation () =
  let reports =
    prows Separation.run (pick [ 1; 2; 3; 4; 5; 6; 8; 10; 12 ] [ 1; 2 ])
  in
  Report.print_table
    ~title:
      "E7 (Theorem 1, the headline separation): CFG Θ(log n) vs NFA poly vs \
       uCFG 2^Ω(n)"
    ~headers:Separation.headers (Separation.rows reports);
  Report.print_table
    ~title:"E7b: asymptotics of the certified uCFG lower bound (Theorem 12)"
    ~headers:[ "n"; "cover lb"; "uCFG size lb"; "log2(lb)"; "CFG size" ]
    (prows
       (fun n ->
          [
            string_of_int n;
            Bignum.to_string (Ucfg_disc.Bound.cover_lower_bound n);
            Bignum.to_string (Ucfg_disc.Bound.ucfg_size_lower_bound n);
            Printf.sprintf "%.1f" (Ucfg_disc.Bound.log2_ucfg_bound n);
            string_of_int (Grammar.size (Constructions.log_cfg n));
          ])
       (pick [ 100; 200; 400; 800; 1600; 3200 ] [ 100; 200 ]));
  Printf.printf
    "first n with a nontrivial (>= 2) certified uCFG bound: %d\n\n"
    (Ucfg_disc.Bound.first_nontrivial_n ())

(* ------------------------------------------------------------------ E8 *)

let e8_counting () =
  Report.print_table
    ~title:
      "E8 (counting): |L_n| via the poly-time uCFG DP vs brute-force \
       enumeration vs the 4^n - 3^n formula"
    ~headers:[ "n"; "uCFG DP"; "enumeration"; "formula"; "agree" ]
    (prows
       (fun n ->
          let dp =
            Count.words_unambiguous (Cnf.of_grammar (Constructions.example4 n))
              (2 * n)
          in
          let enum = Count.words_by_enumeration (Constructions.log_cfg n) in
          let formula = Ln.cardinal n in
          [
            string_of_int n;
            Bignum.to_string dp;
            Bignum.to_string enum;
            Bignum.to_string formula;
            yes (Bignum.equal dp formula && Bignum.equal enum formula);
          ])
       (pick [ 1; 2; 3; 4; 5; 6; 7 ] [ 1; 2 ]));
  (* the DP scales far beyond enumeration *)
  Report.print_table ~title:"E8b: the DP keeps going where enumeration cannot"
    ~headers:[ "n"; "uCFG DP count"; "formula"; "agree" ]
    (prows
       (fun n ->
          let dp =
            Count.words_unambiguous (Cnf.of_grammar (Constructions.example4 n))
              (2 * n)
          in
          [
            string_of_int n; Bignum.to_string dp;
            Bignum.to_string (Ln.cardinal n);
            yes (Bignum.equal dp (Ln.cardinal n));
          ])
       (pick [ 8; 9; 10; 11 ] [ 8 ]))

(* ------------------------------------------------------------------ E9 *)

let e9_cnf () =
  let grammars =
    pick
      [
        ("log_cfg 4", Constructions.log_cfg 4);
        ("log_cfg 16", Constructions.log_cfg 16);
        ("log_cfg 100", Constructions.log_cfg 100);
        ("example3 3", Constructions.example3 3);
        ("example3 6", Constructions.example3 6);
        ("example4 4", Constructions.example4 4);
        ("example4 6", Constructions.example4 6);
        ("csv 3x2", Csv.grammar { Csv.columns = 3; width = 2 });
      ]
      [
        ("log_cfg 4", Constructions.log_cfg 4);
        ("example3 3", Constructions.example3 3);
      ]
  in
  Report.print_table
    ~title:"E9 (Section 2): CNF conversion |G'| <= |G|² (plus O(1) start slack)"
    ~headers:[ "grammar"; "|G|"; "|CNF(G)|"; "ratio"; "within |G|²" ]
    (prows
       (fun (name, g) ->
          let s = Grammar.size g in
          let s' = Grammar.size (Cnf.of_grammar g) in
          [
            name;
            string_of_int s;
            string_of_int s';
            Printf.sprintf "%.2f" (float_of_int s' /. float_of_int s);
            yes (s' <= (s * s) + 4);
          ])
       grammars)

(* ----------------------------------------------------------------- E10 *)

let e10_extract () =
  let cases =
    pick
      [
        ("log_cfg 3", Constructions.log_cfg 3, false);
        ("log_cfg 4", Constructions.log_cfg 4, false);
        ("log_cfg 5", Constructions.log_cfg 5, false);
        ("log_cfg 6", Constructions.log_cfg 6, false);
        ("example3 1", Constructions.example3 1, false);
        ("example4 2", Constructions.example4 2, true);
        ("example4 3", Constructions.example4 3, true);
        ("example4 4", Constructions.example4 4, true);
        ("trivial L_3",
         Constructions.of_language Alphabet.binary (Ln.language 3), true);
        ("sigma^6", Constructions.sigma_chain Alphabet.binary 6, true);
      ]
      [
        ("log_cfg 3", Constructions.log_cfg 3, false);
        ("example4 2", Constructions.example4 2, true);
      ]
  in
  Report.print_table
    ~title:
      "E10 (Proposition 7): balanced rectangle covers extracted from \
       grammars; <= N·|G| many; disjoint iff the grammar is unambiguous"
    ~headers:
      [ "grammar"; "N"; "|G| cnf"; "rects"; "bound"; "cover"; "disjoint";
        "balanced" ]
    (prows
       (fun (name, g, expect_disjoint) ->
          let res = Ucfg_rect.Extract.run g in
          let v, shape = Ucfg_rect.Extract.verify g res in
          let disj =
            if expect_disjoint then yes v.Ucfg_rect.Cover.is_disjoint
            else if v.Ucfg_rect.Cover.is_disjoint then "yes" else "no (amb.)"
          in
          [
            name;
            string_of_int res.Ucfg_rect.Extract.word_length;
            string_of_int res.Ucfg_rect.Extract.cnf_size;
            string_of_int (List.length res.Ucfg_rect.Extract.rectangles);
            string_of_int res.Ucfg_rect.Extract.bound;
            yes v.Ucfg_rect.Cover.is_cover;
            disj;
            yes shape;
          ])
       cases)

(* ----------------------------------------------------------------- E11 *)

let e11_rank () =
  Report.print_table
    ~title:
      "E11 (Theorem 17 via the classical route): rank of the midpoint L_n \
       matrix = 2^n - 1, so disjoint [1,n]-covers need that many rectangles; \
       fooling sets give the (weaker) bound n for arbitrary covers"
    ~headers:[ "n"; "matrix"; "rank GF(2)"; "rank mod p"; "2^n - 1"; "fooling" ]
    (prows
       (fun n ->
          let m =
            Ucfg_comm.Matrix.of_language Alphabet.binary (Ln.language n)
              ~split:n
          in
          [
            string_of_int n;
            Printf.sprintf "%dx%d" (Ucfg_comm.Matrix.rows m)
              (Ucfg_comm.Matrix.cols m);
            string_of_int (Ucfg_comm.Rank.gf2 m);
            string_of_int (Ucfg_comm.Rank.mod_p m);
            string_of_int ((1 lsl n) - 1);
            string_of_int (List.length (Ucfg_comm.Fooling.greedy m));
          ])
       (pick [ 1; 2; 3; 4; 5; 6; 7; 8 ] [ 1; 2 ]))

(* ----------------------------------------------------------------- E12 *)

let e12_fr () =
  Report.print_table
    ~title:
      "E12a (KMN isomorphism): CFG ↔ d-representation, language-exact, \
       size within a constant factor, unambiguity = determinism"
    ~headers:[ "grammar"; "|G|"; "drep edges"; "|G back|"; "exact"; "det=unamb" ]
    (prows
       (fun (name, g) ->
          let g = Trim.trim g in
          let d = Ucfg_fr.Iso.drep_of_cfg g in
          let back = Ucfg_fr.Iso.cfg_of_drep d in
          let exact =
            yes
              (Lang.equal (Analysis.language_exn g) (Ucfg_fr.Drep.denotation d)
               && Lang.equal (Analysis.language_exn g)
                    (Analysis.language_exn back))
          in
          let det =
            yes
              (Ucfg_fr.Drep.is_deterministic d = Ambiguity.is_unambiguous g)
          in
          [
            name;
            string_of_int (Grammar.size g);
            string_of_int (Ucfg_fr.Drep.size d);
            string_of_int (Grammar.size back);
            exact;
            det;
          ])
       (pick
          [
            ("log_cfg 3", Constructions.log_cfg 3);
            ("log_cfg 5", Constructions.log_cfg 5);
            ("example3 1", Constructions.example3 1);
            ("example4 3", Constructions.example4 3);
            ("example4 4", Constructions.example4 4);
          ]
          [
            ("log_cfg 3", Constructions.log_cfg 3);
            ("example3 1", Constructions.example3 1);
          ]));
  let rng = Rng.create 77 in
  let hot = String.make 6 'a' in
  Report.print_table
    ~title:
      "E12b (Olteanu–Závodný motivation): factorised join vs materialised, \
       fully skewed keys"
    ~headers:[ "|R|=|S|"; "join"; "materialised"; "factorised"; "exact" ]
    (List.map
       (fun size ->
          let r =
            Ucfg_fr.Join.random_relation rng ~width:6 ~size ~skew:1.0
              ~join_side:`Second ~hot ()
          in
          let s =
            Ucfg_fr.Join.random_relation rng ~width:6 ~size ~skew:1.0
              ~join_side:`First ~hot ()
          in
          let tuples = Ucfg_fr.Join.join_tuples r s in
          let d = Ucfg_fr.Join.factorize r s in
          [
            string_of_int size;
            string_of_int (Lang.cardinal tuples);
            string_of_int (Ucfg_fr.Join.materialized_size r s);
            string_of_int (Ucfg_fr.Drep.size d);
            yes (Lang.equal tuples (Ucfg_fr.Drep.denotation d));
          ])
       (* the rows thread one Rng, so they stay sequential at any job count *)
       (pick [ 4; 8; 16; 32; 64; 128 ] [ 4 ]))

(* ----------------------------------------------------------------- E13 *)

let e13_ground_truth () =
  Report.print_table
    ~title:"E13a: exhaustive ground truth for tiny L_n — minimal DFAs"
    ~headers:[ "n"; "minimal DFA states" ]
    (List.map
       (fun n ->
          [
            string_of_int n;
            string_of_int
              (Search.minimal_dfa_states Alphabet.binary (Ln.language n));
          ])
       [ 1; 2; 3 ]);
  let l1 = Search.minimal_cnf_size Alphabet.binary (Ln.language 1) in
  let l1u =
    Search.minimal_cnf_size ~unambiguous:true Alphabet.binary (Ln.language 1)
  in
  Printf.printf
    "E13b: minimal CNF grammar for L_1 = {aa}: size %s (unambiguous: %s); \
     nodes explored: %d\n"
    (match l1.Search.minimal_size with Some s -> string_of_int s | None -> "?")
    (match l1u.Search.minimal_size with Some s -> string_of_int s | None -> "?")
    l1.Search.nodes_explored;
  (match Ucfg_comm.Cover_search.minimum_ln 2 with
   | Ucfg_comm.Cover_search.Exact k ->
     Printf.printf
       "E13c: minimum disjoint cover of L_2 by balanced ordered rectangles: \
        exactly %d (greedy finds %d)\n\n"
       k
       (List.length (Ucfg_rect.Cover.greedy_disjoint_cover (Ln.language 2) ~n:2))
   | Ucfg_comm.Cover_search.Budget_exhausted lb ->
     Printf.printf "E13c: search exhausted; lower bound %d\n\n" lb
   | Ucfg_comm.Cover_search.Interrupted (lb, r) ->
     Printf.printf "E13c: search interrupted (%s); lower bound %d\n\n"
       (Ucfg_exec.Guard.reason_code r) lb)

(* ----------------------------------------------------------------- E14 *)

let e14_neat () =
  let rng = Rng.create 4242 in
  let trials = if !smoke then 3 else 40 in
  let n = 8 in
  let max_pieces = ref 0 in
  let all_ok = ref true in
  for _ = 1 to trials do
    (* a random balanced (not necessarily neat) partition and rectangle *)
    let ps = Array.of_list (Ucfg_rect.Partition.all_balanced ~n) in
    let p = ps.(Rng.int rng (Array.length ps)) in
    let ins = Ucfg_rect.Partition.inside p
    and out = Ucfg_rect.Partition.outside p in
    let comps k part = List.init k (fun _ -> Rng.bits62 rng land part) in
    let r = Ucfg_rect.Set_rectangle.make p ~outer:(comps 5 out) ~inner:(comps 5 ins) in
    let pieces = Ucfg_rect.Set_rectangle.split_neat r in
    if List.length pieces > !max_pieces then max_pieces := List.length pieces;
    let module IS = Set.Make (Int) in
    let union =
      List.fold_left
        (fun acc pc -> IS.union acc (IS.of_seq (Ucfg_rect.Set_rectangle.members pc)))
        IS.empty pieces
    in
    let orig = IS.of_seq (Ucfg_rect.Set_rectangle.members r) in
    if not (IS.equal union orig) then all_ok := false;
    if not (List.for_all Ucfg_rect.Set_rectangle.is_neat pieces) then
      all_ok := false
  done;
  Printf.printf
    "E14 (Lemma 21): %d random balanced rectangles at n=%d neatened: max \
     pieces %d (bound 256), all unions preserved and neat: %s\n\n"
    trials n !max_pieces (yes !all_ok)

(* ----------------------------------------------------------------- E15 *)

let e15_bar_hillel () =
  Report.print_table
    ~title:
      "E15 (ablation): rebuilding L_n by Bar–Hillel product, Σ^2n ∩ pattern \
       NFA — an independent route, cross-checked against the paper's \
       grammars"
    ~headers:
      [ "n"; "cube CNF"; "pattern states"; "product size"; "exact";
        "ambiguous (runs)" ]
    (prows
       (fun n ->
          let cube = Constructions.sigma_chain Alphabet.binary (2 * n) in
          let pat = Ucfg_automata.Ln_nfa.pattern n in
          let g = Ucfg_automata.Bar_hillel.intersect cube pat in
          let exact =
            if n <= 5 then
              yes (Lang.equal (Ln.language n) (Analysis.language_exn g))
            else "-"
          in
          let amb =
            (* as ambiguous as the NFA's runs: multiple matches => multiple
               runs for n >= 2; unique run at n = 1 *)
            if n <= 4 then
              if Ambiguity.is_unambiguous g then "no" else "yes"
            else "-"
          in
          [
            string_of_int n;
            string_of_int (Grammar.size (Cnf.of_grammar cube));
            string_of_int (Ucfg_automata.Nfa.state_count pat);
            string_of_int (Grammar.size g);
            exact;
            amb;
          ])
       (pick [ 1; 2; 3; 4; 5; 6 ] [ 1; 2 ]))

(* ----------------------------------------------------------------- E16 *)

let e16_direct_access () =
  Report.print_table
    ~title:
      "E16 (unambiguity pays: direct access): counting-based nth/rank/sample \
       on the Example 4 uCFG — no enumeration"
    ~headers:[ "n"; "total"; "nth(total/2)"; "rank inverts"; "uniform sample" ]
    (* each row seeds its own Rng from n, so rows are parallel-safe *)
    (prows
       (fun n ->
          let da =
            Direct_access.create (Cnf.of_grammar (Constructions.example4 n))
              ~max_len:(2 * n)
          in
          let total = Direct_access.total da in
          let mid = fst (Bignum.divmod total Bignum.two) in
          let w = Option.get (Direct_access.nth da mid) in
          let inverts =
            match Direct_access.rank da w with
            | Some r -> yes (Bignum.equal r mid)
            | None -> "NO"
          in
          let rng = Rng.create (42 + n) in
          let sample = Option.get (Direct_access.sample da rng) in
          [
            string_of_int n; Bignum.to_string total; w; inverts;
            sample;
          ])
       (pick [ 2; 3; 4; 5; 6; 7; 8 ] [ 2; 3 ]))

(* ----------------------------------------------------------------- E17 *)

let e17_slp () =
  Report.print_table
    ~title:
      "E17 (related work, grammar-based compression): SLP sizes vs word \
       lengths — random access without decompression"
    ~headers:[ "word"; "length"; "SLP nodes"; "char_at spot-check" ]
    (prows
       (fun (name, slp, probe, expect) ->
          [
            name;
            Bignum.to_string (Slp.length slp);
            string_of_int (Slp.size slp);
            Printf.sprintf "w[%s]='%c' %s" (Bignum.to_string probe)
              (Slp.char_at slp probe)
              (yes (Char.equal (Slp.char_at slp probe) expect));
          ])
       (pick
          [
            ("(ab)^2^19", Slp.power (Slp.of_word "ab") (1 lsl 19),
             Bignum.of_int 999_999, 'b');
            ("fibonacci 60", Slp.fibonacci 60, Bignum.two_pow 40, 'a');
            ("a^10^6", Slp.power (Slp.of_word "a") 1_000_000,
             Bignum.of_int 123_456, 'a');
            ("of_word (ab)^64",
             Slp.of_word (String.concat "" (List.init 64 (fun _ -> "ab"))),
             Bignum.of_int 100, 'a');
          ]
          [
            ("fibonacci 60", Slp.fibonacci 60, Bignum.two_pow 40, 'a');
            ("of_word (ab)^64",
             Slp.of_word (String.concat "" (List.init 64 (fun _ -> "ab"))),
             Bignum.of_int 100, 'a');
          ]))

(* ----------------------------------------------------------------- E18 *)

let e18_circuits () =
  Report.print_table
    ~title:
      "E18 (knowledge compilation): Boolean circuits for INT_n — \
       determinism is O(n²) for the FUNCTION; the paper's 2^Ω(n) hardness \
       lives in the word structure, not the Boolean structure"
    ~headers:
      [ "n"; "DNNF size"; "d-DNNF size"; "det?"; "model count"; "= 4^n-3^n" ]
    (prows
       (fun n ->
          let naive = Ucfg_kc.Ln_circuit.naive n in
          let det = Ucfg_kc.Ln_circuit.deterministic n in
          let mc = Ucfg_kc.Circuit.model_count det in
          let det_flag =
            if n <= 8 then yes (Ucfg_kc.Circuit.is_deterministic det) else "-"
          in
          [
            string_of_int n;
            string_of_int (Ucfg_kc.Circuit.size naive);
            string_of_int (Ucfg_kc.Circuit.size det);
            det_flag;
            Bignum.to_string mc;
            yes (Bignum.equal mc (Ln.cardinal n));
          ])
       (pick [ 1; 2; 4; 8; 16; 32; 64 ] [ 1; 2 ]))

(* ----------------------------------------------------------------- E19 *)

let e19_profiles () =
  let show name g =
    let p = Ambiguity.profile g in
    [
      name;
      string_of_int p.Ambiguity.word_total;
      string_of_int p.Ambiguity.ambiguous_words;
      Bignum.to_string p.Ambiguity.max_trees;
      String.concat " "
        (List.map (fun (k, v) -> Printf.sprintf "%s×%d" k v)
           p.Ambiguity.histogram);
    ]
  in
  Report.print_table
    ~title:
      "E19a (ambiguity degree): distribution of parse-tree counts per word \
       — how non-disjoint the natural union is"
    ~headers:[ "grammar"; "words"; "ambiguous"; "max trees"; "histogram" ]
    (prows
       (fun (name, g) -> show name g)
       (pick
          [
            ("example3 1 (L_3)", Constructions.example3 1);
            ("log_cfg 4 (L_4)", Constructions.log_cfg 4);
            ("log_cfg 5 (L_5)", Constructions.log_cfg 5);
            ("example4 4 (uCFG)", Constructions.example4 4);
          ]
          [
            ("example3 1 (L_3)", Constructions.example3 1);
            ("log_cfg 4 (L_4)", Constructions.log_cfg 4);
          ]));
  Report.print_table
    ~title:
      "E19b (per-split rank profile of L_4): what each fixed partition \
       certifies — the multi-partition bound must beat the weakest \
       balanced split"
    ~headers:[ "split"; "matrix"; "rank GF(2)"; "fooling" ]
    (List.map
       (fun r ->
          [
            string_of_int r.Ucfg_comm.Splits.split;
            Printf.sprintf "%dx%d" r.Ucfg_comm.Splits.rows
              r.Ucfg_comm.Splits.cols;
            string_of_int r.Ucfg_comm.Splits.rank_gf2;
            string_of_int r.Ucfg_comm.Splits.fooling;
          ])
       (Ucfg_comm.Splits.profile Alphabet.binary (Ln.language 4)));
  Printf.printf "minimum GF(2) rank over balanced splits of L_4: %d\n\n"
    (Ucfg_comm.Splits.balanced_min_rank Alphabet.binary (Ln.language 4))

(* ----------------------------------------------------------------- E20 *)

let e20_ufa () =
  Report.print_table
    ~title:
      "E20 (unambiguous automata): the same story one level down — NFAs \
       for L_n are Θ(n²), UFAs need 2^n - 1 states (Schmidt's rank bound), \
       and the deterministic witness matches up to a constant"
    ~headers:[ "n"; "NFA states"; "UFA lower (2^n-1)"; "UFA built"; "unamb" ]
    (prows
       (fun n ->
          let ufa = Ucfg_automata.Ufa_ln.build n in
          let unamb =
            if n <= 5 then
              yes (Ucfg_automata.Unambiguous.is_unambiguous ufa)
            else "-"
          in
          [
            string_of_int n;
            string_of_int (Ucfg_automata.Nfa.state_count (Ucfg_automata.Ln_nfa.build n));
            string_of_int (Ucfg_automata.Ufa_ln.state_lower_bound n);
            string_of_int (Ucfg_automata.Nfa.state_count ufa);
            unamb;
          ])
       (pick [ 1; 2; 3; 4; 5; 6; 7 ] [ 1; 2 ]))

(* ----------------------------------------------------------------- E21 *)

let e21_structured () =
  Report.print_table
    ~title:
      "E21 (structured circuits, the [6] connection): over the X|Y vtree, \
       deterministic structured circuits for INT_n decompose into exactly \
       2^n - 1 disjoint rectangles (= the rank bound) and are forced \
       exponential; the unstructured d-DNNF stays O(n²)"
    ~headers:
      [ "n"; "structured size"; "unstructured size"; "rects (2^n-1)";
        "cover/disjoint" ]
    (prows
       (fun n ->
          let c = Ucfg_kc.Ln_circuit.structured n in
          let verdict =
            if n <= 5 then begin
              let v =
                Ucfg_kc.Structured.verify
                  (Ucfg_kc.Ln_circuit.structured_vtree n)
                  c
              in
              Printf.sprintf "%s/%s"
                (if v.Ucfg_kc.Structured.is_cover then "yes" else "NO")
                (if v.Ucfg_kc.Structured.is_disjoint then "yes" else "NO")
            end
            else "-"
          in
          [
            string_of_int n;
            string_of_int (Ucfg_kc.Circuit.size c);
            string_of_int (Ucfg_kc.Circuit.size (Ucfg_kc.Ln_circuit.deterministic n));
            string_of_int ((1 lsl n) - 1);
            verdict;
          ])
       (pick [ 1; 2; 3; 4; 5; 8; 10; 12 ] [ 1; 2 ]))

(* ----------------------------------------------------------------- E22 *)

let e22_disambiguate () =
  Report.print_table
    ~title:
      "E22 (the KMN upper-bound direction): CFG → canonical uCFG (minimal \
       DFA route) — the measured face of the double-exponential optimality \
       claim; Theorem 12 lower bound and Example 4 upper bound sandwich it"
    ~headers:
      [ "n"; "CFG (Θ(log n))"; "canonical uCFG"; "Example 4 uCFG"; "unamb" ]
    (prows
       (fun n ->
          let g = Constructions.log_cfg n in
          let u = Ucfg_automata.Disambiguate.ucfg_of_grammar g in
          let unamb =
            if n <= 5 then yes (Ambiguity.is_unambiguous u) else "-"
          in
          [
            string_of_int n;
            string_of_int (Grammar.size g);
            string_of_int (Grammar.size u);
            string_of_int (Grammar.size (Constructions.example4 n));
            unamb;
          ])
       (pick [ 1; 2; 3; 4; 5; 6; 7 ] [ 1; 2 ]))

(* ----------------------------------------------------------------- E23 *)

let e23_overlap_asymmetry () =
  Report.print_table
    ~title:
      "E23 (the central asymmetry, at the matrix level): covering the L_n \
       matrix with overlaps (bicliques / nondeterminism) is ~n; covering it \
       disjointly (rank / unambiguity) is 2^n - 1"
    ~headers:
      [ "n"; "fooling lb"; "greedy bicliques"; "rank (disjoint lb)";
        "witness columns" ]
    (prows
       (fun n ->
          let m =
            Ucfg_comm.Matrix.of_language Alphabet.binary (Ln.language n)
              ~split:n
          in
          let lower, upper = Ucfg_comm.Biclique.cover_number_bounds m in
          [
            string_of_int n;
            string_of_int lower;
            string_of_int upper;
            string_of_int (Ucfg_comm.Rank.gf2 m);
            string_of_int n;
          ])
       (pick [ 2; 3; 4; 5; 6; 7 ] [ 2; 3 ]))

(* ----------------------------------------------------------------- E24 *)

let e24_lint_fastpath () =
  (* the linter's sound pre-checks vs the exhaustive count on the Appendix-A
     grammars: the bounded tree-count probe finds a duplicated word without
     materialising the language, so the fast path in Ambiguity.check wins by
     a growing factor (the exhaustive path enumerates ~4^n words) *)
  let time f =
    let t0 = Sys.time () in
    let rec loop i last = if i = 0 then last else loop (i - 1) (f ()) in
    let r = loop 5 (f ()) in
    (r, (Sys.time () -. t0) /. 6.0 *. 1e3)
  in
  Report.print_table
    ~title:
      "E24 lint fast path: Ambiguity.is_unambiguous on log_cfg n, exhaustive \
       vs static pre-checks (ms per call, mean of 6)"
    ~headers:[ "n"; "exhaustive ms"; "fast ms"; "speedup"; "agree" ]
    (List.map
       (fun n ->
          let g = Constructions.log_cfg n in
          let slow, slow_ms = time (fun () -> Ambiguity.is_unambiguous ~fast:false g) in
          let fast, fast_ms = time (fun () -> Ambiguity.is_unambiguous g) in
          [
            string_of_int n;
            Printf.sprintf "%.2f" slow_ms;
            Printf.sprintf "%.2f" fast_ms;
            Printf.sprintf "%.1fx" (slow_ms /. Float.max fast_ms 1e-6);
            string_of_bool (slow = fast);
          ])
       (* sequential on purpose: each row times its own calls *)
       (pick [ 4; 5; 6; 7; 8 ] [ 4 ]));
  (* beyond n=8 the exhaustive count is out of reach (4^n - 3^n words); the
     static verdict still answers in milliseconds *)
  let t0 = Sys.time () in
  let v = Ucfg_lint.Grammar_lint.verdict
      (Ucfg_lint.Grammar_lint.run (Constructions.log_cfg 16))
  in
  Printf.printf
    "log_cfg 16 (|L_16| = %s words): lint verdict %s in %.2f ms\n"
    (Bignum.to_string (Ln.cardinal 16))
    (match v with
     | `Ambiguous -> "ambiguous"
     | `Unambiguous -> "unambiguous"
     | `Unknown -> "unknown")
    ((Sys.time () -. t0) *. 1e3)

(* ----------------------------------------------------------------- E25 *)

let e25_parallel_speedup () =
  (* wall-clock comparison of the pooled hot paths at jobs=1 vs jobs=4 —
     Unix.gettimeofday because Sys.time sums CPU time across domains; the
     results must be identical on both paths, the speedup tracks the
     machine's core count (1.0x on a single-core container) *)
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let saved = Ucfg_exec.Exec.jobs () in
  let run jobs f =
    Ucfg_exec.Exec.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Ucfg_exec.Exec.set_jobs saved)
      (fun () -> wall f)
  in
  let n_lang = pick 8 5 and n_amb = pick 7 5 in
  let cases =
    [
      (Printf.sprintf "L_%d materialisation (Analysis.language)" n_lang,
       fun () ->
         string_of_int
           (Lang.cardinal (Analysis.language_exn (Constructions.log_cfg n_lang))));
      (Printf.sprintf "exhaustive ambiguity profile (log_cfg %d)" n_amb,
       fun () ->
         let p = Ambiguity.profile (Constructions.log_cfg n_amb) in
         Printf.sprintf "%d ambiguous of %d, max %s"
           p.Ambiguity.ambiguous_words p.Ambiguity.word_total
           (Bignum.to_string p.Ambiguity.max_trees));
      ("minimal unambiguous CNF search (L_1)",
       fun () ->
         let r =
           Search.minimal_cnf_size ~unambiguous:true Alphabet.binary
             (Ln.language 1)
         in
         Printf.sprintf "size %s, %d nodes"
           (match r.Search.minimal_size with
            | Some s -> string_of_int s
            | None -> "?")
           r.Search.nodes_explored);
    ]
  in
  Report.print_table
    ~title:
      "E25 (execution layer): wall-clock of the pooled hot paths, jobs=1 vs \
       jobs=4 — bit-identical results required at every job count"
    ~headers:[ "hot path"; "jobs=1 ms"; "jobs=4 ms"; "speedup"; "identical" ]
    (List.map
       (fun (name, f) ->
          ignore (f ());
          (* warmup: first call pays allocation/GC ramp-up *)
          let r1, t1 = run 1 f in
          let r4, t4 = run 4 f in
          [
            name;
            Printf.sprintf "%.1f" t1;
            Printf.sprintf "%.1f" t4;
            Printf.sprintf "%.2fx" (t1 /. Float.max t4 1e-6);
            yes (String.equal r1 r4);
          ])
       cases);
  Printf.printf "Domain.recommended_domain_count on this machine: %d\n\n"
    (Domain.recommended_domain_count ())

(* ----------------------------------------------------------------- E26 *)

let e26_packed_speedup () =
  (* wall-clock of the PR 3 hot paths, measured against the pre-packed
     baselines that still live in this binary: [Analysis.language
     ~packed:false] runs the set-backed fixpoint, and [Count_word.trees]
     without a shared plan re-trims per word.  Verdicts/counts must agree
     exactly on both paths. *)
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let row name before after =
    ignore (before ());
    ignore (after ());
    (* warmup: first calls pay allocation/GC ramp-up *)
    let rb, tb = wall before in
    let ra, ta = wall after in
    [
      name;
      Printf.sprintf "%.1f" tb;
      Printf.sprintf "%.1f" ta;
      Printf.sprintf "%.1fx" (tb /. Float.max ta 1e-6);
      yes (String.equal rb ra);
    ]
  in
  let exactness_rows =
    List.map
      (fun n ->
         let g = Constructions.log_cfg n in
         let check packed () =
           let reference =
             if packed then Ln.language n else Lang.unpack (Ln.language n)
           in
           yes (Lang.equal reference (Analysis.language_exn ~packed g))
         in
         row
           (Printf.sprintf "exactness L(log_cfg %d) = L_%d" n n)
           (check false) (check true))
      (pick [ 7; 8; 9 ] [ 4 ])
  in
  let profile_rows =
    List.map
      (fun n ->
         let g = Constructions.log_cfg n in
         let words = Lang.elements (Analysis.language_exn g) in
         let per_word () =
           (* one plan per word: trim + finiteness check every time, as
              before PR 3 *)
           Bignum.to_string
             (List.fold_left
                (fun acc w -> Bignum.add acc (Count_word.trees g w))
                Bignum.zero words)
         in
         let shared_plan () =
           let p = Count_word.plan g in
           Bignum.to_string
             (List.fold_left
                (fun acc w -> Bignum.add acc (Count_word.trees_with p w))
                Bignum.zero words)
         in
         row
           (Printf.sprintf "tree totals over L(log_cfg %d), %d words" n
              (List.length words))
           per_word shared_plan)
      (pick [ 5; 6 ] [ 4 ])
  in
  Report.print_table
    ~title:
      "E26 (packed backend & indexed kernels): wall-clock of the language \
       and counting hot paths, set/per-word baseline vs packed/shared-plan \
       — identical verdicts required"
    ~headers:[ "hot path"; "baseline ms"; "packed ms"; "speedup"; "identical" ]
    (exactness_rows @ profile_rows)

(* ----------------------------------------------------------------- E27 *)

let e27_bitset_kernel () =
  (* wall-clock of this PR's hot paths against the enumeration baselines
     still reachable in this binary: [Cover.verify ~packed:false] and
     [greedy_disjoint_cover ~packed:false] materialise string sets,
     [Discrepancy.of_rectangle_enumerated] walks the [S × T] product,
     [Matrix.of_predicate] probes membership label string by label string,
     and the per-word shared-plan CYK is what [Ambiguity.profile] ran
     before the census sweep.  Outputs must agree exactly on both paths. *)
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let row name before after =
    ignore (before ());
    ignore (after ());
    let rb, tb = wall before in
    let ra, ta = wall after in
    [
      name;
      Printf.sprintf "%.1f" tb;
      Printf.sprintf "%.1f" ta;
      Printf.sprintf "%.1fx" (tb /. Float.max ta 1e-6);
      yes (String.equal rb ra);
    ]
  in
  let verify_rows =
    List.map
      (fun n ->
         let l = Ln.language n in
         let rects = Ucfg_rect.Cover.example8_cover n in
         let check packed () =
           let v = Ucfg_rect.Cover.verify ~packed rects l in
           Printf.sprintf "cover=%b disjoint=%b union=%d sum=%d"
             v.Ucfg_rect.Cover.is_cover v.Ucfg_rect.Cover.is_disjoint
             v.Ucfg_rect.Cover.union_cardinal v.Ucfg_rect.Cover.sum_cardinals
         in
         row
           (Printf.sprintf "Cover.verify (E8 cover of L_%d)" n)
           (check false) (check true))
      (pick [ 7; 8 ] [ 4 ])
  in
  let greedy_rows =
    List.map
      (fun n ->
         let l = Ln.language n in
         let run packed () =
           string_of_int
             (List.length (Ucfg_rect.Cover.greedy_disjoint_cover ~packed l ~n))
         in
         row
           (Printf.sprintf "greedy_disjoint_cover L_%d" n)
           (run false) (run true))
      (pick [ 5; 6 ] [ 3 ])
  in
  let profile_rows =
    List.map
      (fun n ->
         let g = Constructions.log_cfg n in
         let show (total, amb, max_trees, hist) =
           Printf.sprintf "words=%d ambiguous=%d max=%s [%s]" total amb
             max_trees
             (String.concat "; "
                (List.map (fun (k, c) -> Printf.sprintf "%s:%d" k c) hist))
         in
         let per_word () =
           (* per-word CYK over a shared plan: the pre-census profile *)
           let words = Lang.elements (Analysis.language_exn g) in
           let plan = Count_word.plan g in
           let counts = List.map (Count_word.trees_with plan) words in
           let tbl = Hashtbl.create 16 in
           let amb = ref 0 and max_trees = ref Bignum.zero in
           List.iter
             (fun c ->
                if Bignum.compare c Bignum.one > 0 then incr amb;
                if Bignum.compare c !max_trees > 0 then max_trees := c;
                let k = Bignum.to_string c in
                Hashtbl.replace tbl k
                  (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
             counts;
           let hist =
             List.sort
               (fun (a, _) (b, _) ->
                  compare (String.length a, a) (String.length b, b))
               (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
           in
           show
             ( List.length words,
               !amb,
               Bignum.to_string !max_trees,
               hist )
         in
         let census () =
           let p = Ambiguity.profile g in
           show
             ( p.Ambiguity.word_total,
               p.Ambiguity.ambiguous_words,
               Bignum.to_string p.Ambiguity.max_trees,
               p.Ambiguity.histogram )
         in
         row
           (Printf.sprintf "ambiguity profile (log_cfg %d)" n)
           per_word census)
      (pick [ 5; 6 ] [ 4 ])
  in
  let disc_rows =
    List.map
      (fun m ->
         let blocks = Ucfg_disc.Blocks.create (4 * m) in
         let t = Ucfg_disc.Discrepancy.tight_example blocks in
         row
           (Printf.sprintf "discrepancy tight rectangle m=%d" m)
           (fun () ->
              string_of_int
                (Ucfg_disc.Discrepancy.of_rectangle_enumerated blocks t))
           (fun () ->
              string_of_int (Ucfg_disc.Discrepancy.of_rectangle blocks t)))
      (pick [ 3; 4 ] [ 2 ])
  in
  let matrix_rows =
    List.map
      (fun n ->
         let l = Ln.language n in
         let by_labels () =
           let row_w =
             Array.of_seq (Word.enumerate Alphabet.binary n)
           in
           let col_w = row_w in
           let m =
             Ucfg_comm.Matrix.of_predicate ~rows:(Array.length row_w)
               ~cols:(Array.length col_w) (fun r c ->
                 Lang.mem (row_w.(r) ^ col_w.(c)) l)
           in
           string_of_int (Ucfg_comm.Rank.gf2 m)
         in
         let by_codes () =
           let m = Ucfg_comm.Matrix.of_language Alphabet.binary l ~split:n in
           string_of_int (Ucfg_comm.Rank.gf2 m)
         in
         row
           (Printf.sprintf "M(L_%d) build + GF(2) rank" n)
           by_labels by_codes)
      (pick [ 6; 7 ] [ 3 ])
  in
  let reach_rows =
    (* the E8 enumeration column, one n past where the full run stops *)
    List.map
      (fun n ->
         let count packed () =
           Bignum.to_string
             (Bignum.of_int
                (Lang.cardinal
                   (Analysis.language_exn ~packed (Constructions.log_cfg n))))
         in
         row
           (Printf.sprintf "E8 reach: |L_%d| by enumeration" n)
           (count false) (count true))
      (pick [ 8 ] [ 3 ])
  in
  Report.print_table
    ~title:
      "E27 (bitset kernel): wall-clock of the rectangle, cover, matrix and \
       discrepancy hot paths, set/enumeration baseline vs packed kernel — \
       identical output required"
    ~headers:[ "hot path"; "baseline ms"; "packed ms"; "speedup"; "identical" ]
    (verify_rows @ greedy_rows @ profile_rows @ disc_rows @ matrix_rows
   @ reach_rows)

(* ----------------------------------------------------------------- E29 *)

let e29_semantic_check () =
  (* the semantic lint tier as a product: universality / inclusion /
     equivalence / disjointness verdicts on the paper's grammar pairs.  The
     counting backend engages exactly where the unambiguity certificate
     holds (sigma_chain); log_cfg and the trivial grammar fall back to the
     packed algebra.  The text is verdict-only — no wall clock — so the
     checksum gates against drift; per-experiment latency lives in the
     JSON "ms" field. *)
  let module SL = Ucfg_lint.Semantic_lint in
  let backend = function
    | SL.Counting -> "count"
    | SL.Packed -> "packed"
    | SL.Mixed -> "mixed"
  in
  let verdict (r : SL.report) =
    match r.SL.status with
    | SL.Holds -> "holds"
    | SL.Fails cex -> Printf.sprintf "fails on %S" cex.SL.word
    | SL.Interrupted reason ->
      "interrupted " ^ Ucfg_exec.Guard.reason_code reason
  in
  Report.print_table
    ~title:
      "E29 (semantic lint tier): ucfg check verdicts on the L_n grammar \
       pairs — count backend iff the unambiguity certificate holds; every \
       failing verdict carries the shortest witness"
    ~headers:[ "n"; "check"; "verdict"; "backend"; "|L1|" ]
    (List.concat
       (prows
          (fun n ->
             let log = Constructions.log_cfg n in
             let triv =
               Constructions.of_language Alphabet.binary (Ln.language n)
             in
             let sigma = Constructions.sigma_chain Alphabet.binary (2 * n) in
             let co =
               Constructions.of_language Alphabet.binary
                 (Lang.complement_within Alphabet.binary (2 * n)
                    (Ln.language n))
             in
             let mk name r =
               let card =
                 match r.SL.cardinal with
                 | Some b -> Bignum.to_string b
                 | None -> "?"
               in
               [ string_of_int n; name; verdict r; backend r.SL.backend; card ]
             in
             [
               mk "universal sigma_chain" (SL.universal ~cross_check:true sigma);
               mk "universal log_cfg" (SL.universal log);
               mk "includes triv sigma" (SL.includes triv sigma);
               mk "includes sigma triv" (SL.includes sigma triv);
               mk "equiv log triv" (SL.equiv log triv);
               mk "disjoint triv co" (SL.disjoint triv co);
             ])
          (pick [ 4; 5; 6; 7 ] [ 3; 4 ])))

(* ----------------------------------------------------------------- E31 *)

let e31_tier_sweeps () =
  (* The tiered kernel beyond the 62-character wall: every row symbolically
     materialises a language whose words no longer fit one machine integer
     — L_n at n >= 16 has 4^n - 3^n (billions of) words of length 2n >= 32,
     held as a Θ(2^n)-node tier-T2 circuit with exact Bignum model counts.
     The text is verdict-only (no wall clock), so the checksum gates
     against drift and the experiment joins the determinism set. *)
  let tier_name l =
    match Lang.tier l with
    | `T0 -> "T0" | `T1 -> "T1" | `T2 -> "T2" | `Set -> "set"
  in
  Report.print_table
    ~title:
      "E31a (tiered kernel, exactness): the factored fixpoint over the \
       Θ(log n) grammar equals the symbolic L_n circuit at n >= 16 — exact \
       cardinals, never an enumeration"
    ~headers:[ "n"; "tier"; "|L_n|"; "nodes"; "fixpoint = L_n"; "= 4^n-3^n" ]
    (prows
       (fun n ->
          let l =
            Analysis.language_exn ~factored:true (Constructions.log_cfg n)
          in
          let nodes =
            match Lang.to_factored l with
            | Some f -> string_of_int (Factored.node_count f)
            | None -> "-"
          in
          let card = Lang.cardinal_big l in
          [
            string_of_int n;
            tier_name l;
            Bignum.to_string card;
            nodes;
            yes (Lang.equal l (Ln.language_factored n));
            yes (Bignum.equal card (Ln.cardinal n));
          ])
       (pick [ 12; 16; 18 ] [ 12 ]));
  Report.print_table
    ~title:
      "E31b (ambiguity census on T2): counting verdicts with model-count \
       word totals — log_cfg stays ambiguous and sigma_chain unambiguous \
       at language sizes in the billions"
    ~headers:[ "n"; "grammar"; "unambiguous"; "words"; "trees" ]
    (List.concat
       (prows
          (fun n ->
             let fmt name (v : Ambiguity.verdict) =
               [
                 string_of_int n;
                 name;
                 yes v.Ambiguity.unambiguous;
                 (match v.Ambiguity.word_count with
                  | Some c -> string_of_int c
                  | None -> "?");
                 (match v.Ambiguity.total_trees with
                  | Some t -> Bignum.to_string t
                  | None -> "?");
               ]
             in
             let check g = Ambiguity.check ~fast:false ~factored:true g in
             [
               fmt "log_cfg" (check (Constructions.log_cfg n));
               fmt "sigma_chain"
                 (check (Constructions.sigma_chain Alphabet.binary (2 * n)));
             ])
          (pick [ 12; 16 ] [ 12 ])));
  Report.print_table
    ~title:
      "E31c (discrepancy at n >= 16): tight-example rectangle discrepancy \
       against the Lemma 19 bound at m = 4, 5 (n = 4m), with the \
       enumerated cross-check where it still fits"
    ~headers:[ "m"; "n"; "bound 2^3m"; "tight |d|"; "enumerated agrees" ]
    (prows
       (fun m ->
          let blocks = Ucfg_disc.Blocks.create (4 * m) in
          let t = Ucfg_disc.Discrepancy.tight_example blocks in
          let fast = Ucfg_disc.Discrepancy.of_rectangle blocks t in
          let enum_ok =
            if m <= 4 then
              yes (Ucfg_disc.Discrepancy.of_rectangle_enumerated blocks t = fast)
            else "skipped"
          in
          [
            string_of_int m;
            string_of_int (4 * m);
            Bignum.to_string (Ucfg_disc.Discrepancy.lemma19_bound ~m);
            string_of_int (abs fast);
            enum_ok;
          ])
       (pick [ 4; 5 ] [ 2 ]))

(* ----------------------------------------------------------------- E32 *)

let e32_resumable_search () =
  (* Checkpointable sharded search as a product.  E32a: a search
     interrupted by a per-slice tick guard and resumed from its
     checkpoint, slice after slice, lands on exactly the verdict and
     replayed node count of one uninterrupted run.  E32b: the
     cross-domain verdict memo — identical nodes with the memo on or
     off, nonzero hit ratio, and the wall-clock it buys at jobs=1 and
     jobs=4.  Slice counts and wall-clock are scheduling- and
     machine-dependent, so E32 stays out of the determinism set. *)
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let saved = Ucfg_exec.Exec.jobs () in
  let run jobs f =
    Ucfg_exec.Exec.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Ucfg_exec.Exec.set_jobs saved)
      (fun () -> wall f)
  in
  let describe r =
    Printf.sprintf "%s, %d nodes"
      (match r.Search.minimal_size with
       | Some s -> string_of_int s
       | None -> "none")
      r.Search.nodes_explored
  in
  (* E32a: refutation instance small enough to slice finely *)
  let l2 = Ln.language 2 in
  let whole =
    Search.minimal_cnf_size ~max_nonterminals:2 ~max_size:8 Alphabet.binary l2
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucfg-bench-e32-%d" (Unix.getpid ()))
  in
  let rec slices count resume =
    let guard = Ucfg_exec.Guard.create ~budget:8_000 () in
    let r =
      Search.minimal_cnf_size ~guard ~max_nonterminals:2 ~max_size:8
        ~checkpoint:dir ~resume Alphabet.binary l2
    in
    if r.Search.interrupted = None then (r, count) else slices (count + 1) true
  in
  let sliced, interrupts = slices 0 false in
  Report.print_table
    ~title:
      "E32a (resumable search): minimal-CNF search for L_2 (k<=2, size<=8) \
       interrupted every 8k guard ticks and resumed from its checkpoint — \
       the final slice must equal the uninterrupted run byte for byte"
    ~headers:[ "mode"; "result"; "slices"; "identical" ]
    [
      [ "one uninterrupted run"; describe whole; "1"; "-" ];
      [
        "checkpoint + resume";
        describe sliced;
        string_of_int (interrupts + 1);
        yes
          (describe whole = describe sliced
          && Option.map Grammar.to_string whole.Search.witness
             = Option.map Grammar.to_string sliced.Search.witness);
      ];
    ];
  (* E32b: k=3 universe, where nonterminal renamings and cross-k
     containment give the canonical-key memo its hits *)
  let ms = pick 7 6 in
  let search memo () =
    Search.minimal_cnf_size ~max_size:ms ~memo Alphabet.binary (Ln.language 3)
  in
  Report.print_table
    ~title:
      (Printf.sprintf
         "E32b (verdict memo): minimal-CNF search for L_3 (k<=3, size<=%d), \
          memo on vs off — same nodes, hit ratio and wall-clock effect" ms)
    ~headers:
      [ "jobs"; "memo off ms"; "memo on ms"; "speedup"; "hit ratio"; "identical" ]
    (List.map
       (fun jobs ->
          ignore (search true ());
          (* warmup: first call pays allocation/GC ramp-up *)
          let off, t_off = run jobs (search false) in
          let on, t_on = run jobs (search true) in
          let ratio =
            float_of_int on.Search.memo_hits
            /. float_of_int (max 1 (on.Search.memo_hits + on.Search.memo_misses))
          in
          [
            string_of_int jobs;
            Printf.sprintf "%.1f" t_off;
            Printf.sprintf "%.1f" t_on;
            Printf.sprintf "%.2fx" (t_off /. Float.max t_on 1e-6);
            Printf.sprintf "%.2f" ratio;
            yes (describe off = describe on);
          ])
       [ 1; 4 ]);
  Printf.printf "\n"

(* ------------------------------------------------------- timing section *)

let timings () =
  let open Bechamel in
  let log6_cnf = Cnf.of_grammar (Constructions.log_cfg 6) in
  let ex4_8_cnf = Cnf.of_grammar (Constructions.example4 8) in
  let log7 = Constructions.log_cfg 7 in
  let word12 = "aabbabaabbab" in
  let blocks3 = Ucfg_disc.Blocks.create 12 in
  let tight3 = Ucfg_disc.Discrepancy.tight_example blocks3 in
  let matrix6 =
    Ucfg_comm.Matrix.of_language Alphabet.binary (Ln.language 6) ~split:6
  in
  let log4 = Constructions.log_cfg 4 in
  let tests =
    [
      Test.make ~name:"cyk-recognize (log_cfg 6, |w|=12)"
        (Staged.stage (fun () -> ignore (Cyk.recognize log6_cnf word12)));
      Test.make ~name:"count-dp uCFG n=8 (poly)"
        (Staged.stage (fun () ->
             ignore (Count.words_unambiguous ex4_8_cnf 16)));
      Test.make ~name:"count-enumeration CFG n=7 (exp)"
        (Staged.stage (fun () -> ignore (Count.words_by_enumeration log7)));
      Test.make ~name:"extract rectangles (Prop 7, log_cfg 4)"
        (Staged.stage (fun () -> ignore (Ucfg_rect.Extract.run log4)));
      Test.make ~name:"rank GF(2) 64x64 (L_6 midpoint)"
        (Staged.stage (fun () -> ignore (Ucfg_comm.Rank.gf2 matrix6)));
      Test.make ~name:"discrepancy m=3 full-family rectangle"
        (Staged.stage (fun () ->
             ignore (Ucfg_disc.Discrepancy.of_rectangle blocks3 tight3)));
      Test.make ~name:"nfa-accepts (L_16 NFA)"
        (let nfa = Ucfg_automata.Ln_nfa.build 16 in
         let w = String.init 32 (fun i -> if i mod 3 = 0 then 'a' else 'b') in
         Staged.stage (fun () -> ignore (Ucfg_automata.Nfa.accepts nfa w)));
      Test.make ~name:"ambiguity exhaustive (log_cfg 6)"
        (let g = Constructions.log_cfg 6 in
         Staged.stage (fun () ->
             ignore (Ambiguity.is_unambiguous ~fast:false g)));
      Test.make ~name:"ambiguity lint fast-path (log_cfg 6)"
        (let g = Constructions.log_cfg 6 in
         Staged.stage (fun () -> ignore (Ambiguity.is_unambiguous g)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    if !smoke then Benchmark.cfg ~limit:1 ~quota:(Time.second 0.001) ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let grouped = Test.make_grouped ~name:"ucfg" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  Report.print_table ~title:"timings (Bechamel OLS estimate, ns per run)"
    ~headers:[ "benchmark"; "ns/run" ]
    (Hashtbl.fold
       (fun name ols_result acc ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.sprintf "%.0f" est
            | _ -> "?"
          in
          [ name; ns ] :: acc)
       results []
     |> List.sort compare)

let e30_serve_cache () =
  (* the serving tier as a product: each request is answered three times —
     a cold computation on a fresh server, a warm re-ask on the same
     server (an in-memory LRU hit) and a re-ask on a second fresh server
     over the same cache directory (a verified on-disk hit).  The table is
     the byte-identity gate: one MD5 over the [result] payload per row,
     required identical across all three sources, plus the source
     trajectory itself.  No wall clock in the text — `make determinism`
     diffs it across jobs 1 and 4; latency lives in bombard reports. *)
  let module Server = Ucfg_serve.Server in
  let module Json = Ucfg_serve.Json in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucfg-bench-e30-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  Fun.protect ~finally:(fun () -> rm dir) @@ fun () ->
  let requests =
    pick
      [
        ("lint log:4", {|{"op": "lint", "kind": "log", "n": 4}|});
        ( "lint example4:3 sem",
          {|{"op": "lint", "kind": "example4", "n": 3, "semantic": true}|} );
        ("ambiguity log:4", {|{"op": "ambiguity", "kind": "log", "n": 4}|});
        ( "ambiguity example4:4",
          {|{"op": "ambiguity", "kind": "example4", "n": 4}|} );
        ( "check universal trivial:3",
          {|{"op": "check", "property": "universal", "kind": "trivial", "n": 3}|}
        );
        ( "check equiv log:4 trivial:4",
          {|{"op": "check", "property": "equiv", "kind": "log", "n": 4, "kind2": "trivial", "n2": 4}|}
        );
        ( "rectangles example4:3",
          {|{"op": "rectangles", "kind": "example4", "n": 3}|} );
        ("rank log:4", {|{"op": "rank", "kind": "log", "n": 4}|});
      ]
      [
        ("lint log:3", {|{"op": "lint", "kind": "log", "n": 3}|});
        ("ambiguity log:3", {|{"op": "ambiguity", "kind": "log", "n": 3}|});
        ( "check universal trivial:3",
          {|{"op": "check", "property": "universal", "kind": "trivial", "n": 3}|}
        );
        ("rank log:3", {|{"op": "rank", "kind": "log", "n": 3}|});
      ]
  in
  let srv = Server.create ~cache_dir:(Some dir) () in
  let srv' = Server.create ~cache_dir:(Some dir) () in
  let field name resp =
    match Json.parse resp with
    | Error _ -> "?"
    | Ok v -> (
        match Json.member name v with
        | Some (Json.Str s) -> s
        | Some f -> Json.to_string f
        | None -> "?")
  in
  Report.print_table
    ~title:
      "E30 (artifact cache): each request answered cold (computed), warm \
       (in-memory LRU) and by a fresh server over the same directory \
       (verified disk entry) — one result checksum per row, identical \
       across all three sources"
    ~headers:[ "request"; "sources"; "identical"; "result md5" ]
    (List.map
       (fun (label, req) ->
          let cold = Server.handle_line srv req in
          let warm = Server.handle_line srv req in
          let disk = Server.handle_line srv' req in
          let payload r = field "result" r in
          let md5 s = Digest.to_hex (Digest.string s) in
          let identical =
            String.equal (payload cold) (payload warm)
            && String.equal (payload cold) (payload disk)
          in
          [
            label;
            Printf.sprintf "%s/%s/%s" (field "source" cold)
              (field "source" warm) (field "source" disk);
            (if identical then "yes" else "NO");
            String.sub (md5 (payload cold)) 0 12;
          ])
       requests)

(* ----------------------------------------------------------------- E33 *)

let e33_concurrent_serving () =
  (* The concurrent daemon as a measurement: the same seeded bombard
     profile, 4 persistent client connections, against a real unix-socket
     daemon at --max-connections 1 (one worker: PR 8's effective serial
     loop) and 4.  Wall clock and p99 are machine-dependent, so E33 stays
     out of the determinism set; byte identity across connection counts
     is the serving gate's job (`make serve-smoke` / `make serve-chaos`),
     not this table's — here errors and mismatches are merely required to
     be zero. *)
  let module Server = Ucfg_serve.Server in
  let module Bombard = Ucfg_serve.Bombard in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucfg-bench-e33-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm dir) @@ fun () ->
  let requests = pick 400 60 in
  let clients = 4 in
  let row mc =
    let path = Filename.concat dir (Printf.sprintf "mc%d.sock" mc) in
    (* queue headroom = client count: persistent connections beyond the
       worker pool wait their turn instead of being shed, so the one-
       worker row measures serial service, not retry storms *)
    let srv =
      Server.create ~cache_dir:None ~max_connections:mc
        ~queue_capacity:clients ()
    in
    let th =
      Thread.create (fun () -> ignore (Server.run_unix srv ~path)) ()
    in
    let rec await n =
      if n > 1000 then failwith "e33: daemon did not come up"
      else if not (Sys.file_exists path) then begin
        Thread.delay 0.005;
        await (n + 1)
      end
    in
    await 0;
    let r =
      Fun.protect
        ~finally:(fun () ->
            Server.request_drain srv;
            Thread.join th)
        (fun () ->
           Bombard.concurrent_run ~profile:"smoke" ~seed:1066 ~requests
             ~clients (Bombard.Unix_path path))
    in
    [
      string_of_int mc;
      string_of_int clients;
      string_of_int (r.Bombard.cold.Bombard.count + r.Bombard.warm.Bombard.count);
      Printf.sprintf "%.0f" r.Bombard.throughput_rps;
      Printf.sprintf "%.2f" r.Bombard.warm.Bombard.p50_ms;
      Printf.sprintf "%.2f" r.Bombard.warm.Bombard.p99_ms;
      Printf.sprintf "%.2f" r.Bombard.warm_hit_ratio;
      string_of_int (r.Bombard.errors + r.Bombard.mismatches);
    ]
  in
  Report.print_table
    ~title:
      "E33 (concurrent serving): seeded smoke bombardment over 4 persistent \
       client connections against a unix-socket daemon, one worker vs four \
       — throughput and warm-phase latency (machine-dependent; errors + \
       mismatches must be 0)"
    ~headers:
      [ "max-conn"; "clients"; "served"; "req/s"; "warm p50 ms";
        "warm p99 ms"; "warm hits"; "err+mism" ]
    (List.map row [ 1; 4 ]);
  Printf.printf "\n"

(* ------------------------------------------------------------------ main *)

let experiments =
  [
    ("e1", e1_cfg_upper); ("e2", e2_example3); ("e3", e3_nfa);
    ("e4", e4_ucfg_upper); ("e5", e5_lemma18); ("e6", e6_discrepancy);
    ("e7", e7_separation); ("e8", e8_counting); ("e9", e9_cnf);
    ("e10", e10_extract); ("e11", e11_rank); ("e12", e12_fr);
    ("e13", e13_ground_truth); ("e14", e14_neat);
    ("e15", e15_bar_hillel); ("e16", e16_direct_access); ("e17", e17_slp);
    ("e18", e18_circuits); ("e19", e19_profiles); ("e20", e20_ufa);
    ("e21", e21_structured); ("e22", e22_disambiguate);
    ("e23", e23_overlap_asymmetry); ("e24", e24_lint_fastpath);
    ("e25", e25_parallel_speedup); ("e26", e26_packed_speedup);
    ("e27", e27_bitset_kernel); ("e29", e29_semantic_check);
    ("e30", e30_serve_cache); ("e31", e31_tier_sweeps);
    ("e32", e32_resumable_search);
    ("e33", e33_concurrent_serving);
    ("timings", timings);
  ]

(* --json: run each experiment with stdout captured, echo the output
   through unchanged, and record per-experiment wall-clock plus an MD5
   checksum of the text — the machine-readable perf trajectory.  Checksums
   of deterministic experiments must agree between the sequential and
   parallel runs (the `make json-determinism` gate). *)
let json_mode = ref false
let json_out = ref "BENCH_pr9.json"

(* --timeout SEC wraps each experiment in its own wall-clock guard: a
   tripped experiment prints a note, records a "timeout" outcome in the
   JSON row, and the run moves on to the next experiment instead of
   dying.  Without --timeout the guard is the unlimited singleton and
   output is byte-identical to previous revisions. *)
let exp_timeout = ref None

let governed f () =
  match !exp_timeout with
  | None ->
    f ();
    `Ok
  | Some s ->
    let guard = Ucfg_exec.Guard.create ~timeout:s () in
    (match Ucfg_exec.Exec.with_guard guard f with
     | () -> `Ok
     | exception Ucfg_exec.Guard.Interrupt r ->
       Printf.printf "[experiment timed out: %s]\n"
         (Ucfg_exec.Guard.describe r);
       `Timeout)

let with_stdout_captured f =
  let tmp = Filename.temp_file "ucfg_bench" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stdout;
  Format.print_flush ();
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Format.print_flush ();
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  let finish () =
    restore ();
    let ic = open_in_bin tmp in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove tmp;
    text
  in
  match f () with
  | () -> finish ()
  | exception e ->
    ignore (finish ());
    raise e

let run_experiment name f =
  if not !json_mode then begin
    Printf.printf "\n";
    ignore (governed f ());
    None
  end
  else begin
    let t0 = Unix.gettimeofday () in
    let outcome = ref `Ok in
    let text =
      with_stdout_captured (fun () ->
          Printf.printf "\n";
          outcome := governed f ())
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    (* echo through: with or without --json the terminal sees the same *)
    print_string text;
    flush stdout;
    Some (name, ms, Digest.to_hex (Digest.string text), !outcome)
  end

let write_json records =
  let oc = open_out !json_out in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"meta\": { \"smoke\": %b, \"jobs\": %d },\n" !smoke
    (Ucfg_exec.Exec.jobs ());
  Printf.fprintf oc "  \"experiments\": [\n";
  List.iteri
    (fun i (name, ms, checksum, outcome) ->
       (* outcome sits after the checksum so the bench-compare sed, which
          anchors on name/ms/checksum, keeps matching *)
       Printf.fprintf oc
         "    { \"name\": %S, \"ms\": %.2f, \"checksum\": %S, \
          \"outcome\": %S }%s\n"
         name ms checksum
         (match outcome with `Ok -> "ok" | `Timeout -> "timeout")
         (if i = List.length records - 1 then "" else ","))
    records;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let () =
  let rec parse names = function
    | [] -> List.rev names
    | "--smoke" :: rest ->
      smoke := true;
      parse names rest
    | "--json" :: rest ->
      json_mode := true;
      parse names rest
    | "--json-out" :: file :: rest ->
      json_mode := true;
      json_out := file;
      parse names rest
    | "--jobs" :: n :: rest ->
      Ucfg_exec.Exec.set_jobs (int_of_string n);
      parse names rest
    | arg :: rest when String.starts_with ~prefix:"--jobs=" arg ->
      Ucfg_exec.Exec.set_jobs
        (int_of_string (String.sub arg 7 (String.length arg - 7)));
      parse names rest
    | "--timeout" :: s :: rest ->
      exp_timeout := Some (float_of_string s);
      parse names rest
    | arg :: rest when String.starts_with ~prefix:"--timeout=" arg ->
      exp_timeout :=
        Some (float_of_string (String.sub arg 10 (String.length arg - 10)));
      parse names rest
    | arg :: rest -> parse (arg :: names) rest
  in
  let selected =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | names -> names
  in
  let records =
    List.filter_map
      (fun name ->
         match List.assoc_opt name experiments with
         | Some f -> run_experiment name f
         | None ->
           Printf.eprintf "unknown experiment %s\n" name;
           None)
      selected
  in
  if !json_mode then write_json records
