(* Graceful-degradation boundaries: each accelerated representation must
   hand over to its general fallback exactly at its documented limit, with
   no observable difference — the packed word backend at
   [Packed.max_length], [Lang.add] falling back from packed to sets, and
   the CYK kernel escaping from int to Bignum counters (here additionally
   under fault injection). *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_exec
module Bignum = Ucfg_util.Bignum

let lang_testable = Alcotest.testable Lang.pp Lang.equal

let with_global_jobs jobs f =
  let saved = Exec.jobs () in
  Exec.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.set_jobs saved) f

let with_chaos cfg f =
  let saved = Chaos.config () in
  Chaos.set (Some cfg);
  Fun.protect ~finally:(fun () -> Chaos.set saved) f

(* --- the packed 62-character frontier ----------------------------------- *)

let is_packed l = Lang.to_packed (Lang.pack l) <> None

let test_packed_length_frontier () =
  let at = String.make Packed.max_length 'a' in
  let over = String.make (Packed.max_length + 1) 'a' in
  Alcotest.(check bool)
    (Printf.sprintf "length %d packs" Packed.max_length)
    true
    (is_packed (Lang.singleton at));
  Alcotest.(check bool)
    (Printf.sprintf "length %d refuses to pack" (Packed.max_length + 1))
    false
    (is_packed (Lang.singleton over));
  (* the refusal is lossless: the set fallback answers identically *)
  let l = Lang.pack (Lang.singleton over) in
  Alcotest.(check bool) "mem" true (Lang.mem over l);
  Alcotest.(check int) "cardinal" 1 (Lang.cardinal l);
  Alcotest.(check (list string)) "elements" [ over ] (Lang.elements l)

let test_concat_across_frontier () =
  (* both operands pack; their concatenation is one character too long to
     pack and must fall back to sets without losing a word *)
  let half n = Lang.pack (Lang.of_list [ String.make n 'a'; String.make n 'b' ]) in
  let l1 = half 32 and l2 = half 31 in
  Alcotest.(check bool) "operands packed" true (is_packed l1 && is_packed l2);
  let cat = Lang.concat l1 l2 in
  Alcotest.(check bool) "63-char result cannot pack" false (is_packed cat);
  let expected =
    Lang.of_list
      [
        String.make 32 'a' ^ String.make 31 'a';
        String.make 32 'a' ^ String.make 31 'b';
        String.make 32 'b' ^ String.make 31 'a';
        String.make 32 'b' ^ String.make 31 'b';
      ]
  in
  Alcotest.check lang_testable "lossless across the frontier" expected cat;
  (* one character shorter and the same concatenation packs *)
  Alcotest.(check bool) "62-char result packs" true
    (is_packed (Lang.concat l1 (half 30)))

(* --- Lang.add degradation under qcheck ---------------------------------- *)

let word_gen =
  (* binary words of length <= 8, biased toward a shared length so packed
     starting points actually occur *)
  QCheck.Gen.(
    let* len = int_range 0 8 in
    let* bits = list_size (return len) bool in
    return (String.concat "" (List.map (fun b -> if b then "b" else "a") bits)))

let prop_add_degrades_losslessly =
  QCheck.Test.make ~name:"Lang.add: fold over pack = of_list, any mix"
    ~count:500
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 0 12) word_gen) word_gen))
    (fun (ws, w) ->
       (* start from a packed uniform-length language when possible, then
          add arbitrary words: adding a different length forces the
          packed -> set fallback, which must be unobservable *)
       let folded =
         List.fold_left (fun acc x -> Lang.add x acc) Lang.empty ws
       in
       let via_list = Lang.of_list ws in
       let packed_then_add = Lang.add w (Lang.pack via_list) in
       let set_then_add = Lang.add w via_list in
       Lang.equal folded via_list
       && Lang.elements folded = Lang.elements via_list
       && Lang.equal packed_then_add set_then_add
       && Lang.elements packed_then_add = Lang.elements set_then_add
       && Lang.mem w packed_then_add)

(* --- CYK int -> Bignum escape, also under chaos -------------------------- *)

(* S -> S S | a: a^(n+1) has Catalan(n) parse trees; Catalan(35) overflows
   a 63-bit int, so a^33..a^37 crosses the int -> Bignum escape *)
let catalan_grammar =
  Grammar.make ~alphabet:Alphabet.binary ~names:[| "S" |]
    ~rules:
      Grammar.
        [ { lhs = 0; rhs = [ N 0; N 0 ] }; { lhs = 0; rhs = [ T 'a' ] } ]
    ~start:0

let test_cyk_overflow_under_chaos () =
  let ws = List.init 5 (fun i -> String.make (33 + i) 'a') in
  let reference = List.map (Cyk.count_trees catalan_grammar) ws in
  with_chaos { Chaos.seed = 97; rate = 0.1 } (fun () ->
      with_global_jobs 4 (fun () ->
          let chaotic = Cyk.count_trees_batch catalan_grammar ws in
          Alcotest.(check (list string))
            "counts across the overflow boundary, jobs=4, 10% injection"
            (List.map Bignum.to_string reference)
            (List.map Bignum.to_string chaotic)))

let () =
  Alcotest.run "ucfg_robustness"
    [
      ( "packed-frontier",
        [
          Alcotest.test_case "62-char pack limit" `Quick
            test_packed_length_frontier;
          Alcotest.test_case "concat across the frontier" `Quick
            test_concat_across_frontier;
        ] );
      ( "degradation",
        List.map QCheck_alcotest.to_alcotest [ prop_add_degrades_losslessly ]
      );
      ( "overflow",
        [
          Alcotest.test_case "CYK int->Bignum under chaos" `Quick
            test_cyk_overflow_under_chaos;
        ] );
    ]
