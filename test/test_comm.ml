(* Tests for the communication complexity substrate: matrices, rank
   bounds, fooling sets, protocol trees and the exact cover search. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_comm

(* the L_n matrix at the midpoint split *)
let ln_matrix n = Matrix.of_language Alphabet.binary (Ln.language n) ~split:n

let test_matrix_basics () =
  let m = ln_matrix 2 in
  Alcotest.(check int) "rows" 4 (Matrix.rows m);
  Alcotest.(check int) "cols" 4 (Matrix.cols m);
  Alcotest.(check int) "ones = |L_2|" 7 (Matrix.ones m);
  (* row of "aa" intersects everything except "bb" *)
  let find_row w =
    let rec go i = if Matrix.row_label m i = w then i else go (i + 1) in
    go 0
  in
  let r_aa = find_row "aa" in
  Alcotest.(check int) "aa row has 3 ones" 3
    (Ucfg_util.Bitset.cardinal (Matrix.row m r_aa))

let test_matrix_of_predicate () =
  let m = Matrix.of_predicate ~rows:3 ~cols:3 (fun i j -> i = j) in
  Alcotest.(check bool) "diag" true (Matrix.get m 1 1);
  Alcotest.(check bool) "off" false (Matrix.get m 0 1);
  Alcotest.(check int) "ones" 3 (Matrix.ones m)

let test_rank_identity () =
  let m = Matrix.of_predicate ~rows:8 ~cols:8 (fun i j -> i = j) in
  Alcotest.(check int) "gf2 identity" 8 (Rank.gf2 m);
  Alcotest.(check int) "mod_p identity" 8 (Rank.mod_p m)

let test_rank_all_ones () =
  let m = Matrix.of_predicate ~rows:5 ~cols:7 (fun _ _ -> true) in
  Alcotest.(check int) "gf2 rank 1" 1 (Rank.gf2 m);
  Alcotest.(check int) "mod_p rank 1" 1 (Rank.mod_p m)

let test_rank_parity_differs () =
  (* the complement-of-identity matrix J - I: rank n over Q (n >= 2), but
     over GF(2) it can differ; for n=3: rows 011,101,110: gf2 rank 2 *)
  let m = Matrix.of_predicate ~rows:3 ~cols:3 (fun i j -> i <> j) in
  Alcotest.(check int) "gf2" 2 (Rank.gf2 m);
  Alcotest.(check int) "mod p" 3 (Rank.mod_p m);
  Alcotest.(check int) "combined bound" 3 (Rank.disjoint_cover_lower_bound m)

let test_rank_ln () =
  (* the midpoint L_n matrix M[x,y] = [x∧y ≠ 0] has full rank minus one
     over ℚ: rank 2^n - 1 (the all-b row is zero); over GF(2) it is
     also 2^n - 1 *)
  List.iter
    (fun n ->
       let m = ln_matrix n in
       let expect = (1 lsl n) - 1 in
       Alcotest.(check int) (Printf.sprintf "mod_p n=%d" n) expect (Rank.mod_p m);
       Alcotest.(check int) (Printf.sprintf "gf2 n=%d" n) expect (Rank.gf2 m))
    [ 1; 2; 3; 4; 5 ]

let test_fooling_ln () =
  (* the singleton pairs (e_k, e_k) fool the L_n matrix *)
  let n = 4 in
  let m = ln_matrix n in
  let pairs = Fooling.diagonal m in
  Alcotest.(check bool) "valid" true (Fooling.is_fooling m pairs);
  Alcotest.(check bool) ">= n pairs" true (List.length pairs >= n);
  let g = Fooling.greedy m in
  Alcotest.(check bool) "greedy valid" true (Fooling.is_fooling m g);
  Alcotest.(check bool) "greedy >= n" true (List.length g >= n)

let test_fooling_rejects () =
  let m = Matrix.of_predicate ~rows:2 ~cols:2 (fun _ _ -> true) in
  Alcotest.(check bool) "two pairs in all-ones" false
    (Fooling.is_fooling m [ (0, 0); (1, 1) ])

let test_protocol_eval () =
  let p = Protocol.intersects_protocol 4 in
  for x = 0 to 15 do
    for y = 0 to 15 do
      if Protocol.eval p x y <> (x land y <> 0) then
        Alcotest.failf "protocol wrong on (%d,%d)" x y
    done
  done;
  Alcotest.(check int) "cost n+1" 5 (Protocol.cost p)

let test_protocol_computes () =
  let xs = List.init 16 Fun.id and ys = List.init 16 Fun.id in
  Alcotest.(check bool) "computes intersection" true
    (Protocol.computes (Protocol.intersects_protocol 4) ~xs ~ys (fun x y ->
         x land y <> 0))

let test_protocol_rectangles () =
  let xs = List.init 8 Fun.id and ys = List.init 8 Fun.id in
  let p = Protocol.intersects_protocol 3 in
  Alcotest.(check bool) "leaf classes are rectangles" true
    (Protocol.classes_are_rectangles p ~xs ~ys);
  (* every pair lands in exactly one class: classes partition the space *)
  let classes = Protocol.leaf_classes p ~xs ~ys in
  let total =
    Ucfg_util.Prelude.sum_int
      (List.map (fun (rxs, rys, _) -> List.length rxs * List.length rys) classes)
  in
  Alcotest.(check int) "partition" 64 total

let test_splits_profile () =
  let rows = Splits.profile Alphabet.binary (Ln.language 3) in
  Alcotest.(check int) "one row per split" 5 (List.length rows);
  (* the midpoint split certifies the most *)
  let mid = List.find (fun r -> r.Splits.split = 3) rows in
  Alcotest.(check int) "midpoint rank" 7 mid.Splits.rank_gf2;
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "split %d: rank <= midpoint" r.Splits.split)
         true
         (r.Splits.rank_gf2 <= mid.Splits.rank_gf2))
    rows

let test_splits_balanced_min () =
  (* the multi-partition adversary gets to use the weakest balanced split:
     the certified single-split bound is the minimum over balanced
     positions *)
  let v = Splits.balanced_min_rank Alphabet.binary (Ln.language 3) in
  Alcotest.(check bool) "positive and <= midpoint" true (v >= 1 && v <= 7)

let test_biclique_cover () =
  List.iter
    (fun n ->
       let m = ln_matrix n in
       let cover = Biclique.greedy_cover m in
       Alcotest.(check bool)
         (Printf.sprintf "valid cover n=%d" n)
         true
         (Biclique.is_cover m cover);
       let lower, upper = Biclique.cover_number_bounds m in
       Alcotest.(check bool)
         (Printf.sprintf "n=%d: %d <= cover <= %d, lower >= n" n lower upper)
         true
         (lower <= upper && lower >= n))
    [ 2; 3; 4; 5 ]

let test_biclique_vs_disjoint_gap () =
  (* overlap is free for bicliques (≈ n-ish), crippling for disjoint
     rectangles (2^n - 1 by rank): the paper's central asymmetry *)
  let n = 5 in
  let m = ln_matrix n in
  let _, upper = Biclique.cover_number_bounds m in
  Alcotest.(check bool)
    (Printf.sprintf "biclique %d << rank %d" upper (Rank.gf2 m))
    true
    (2 * upper < Rank.gf2 m)

let test_cover_search_l2 () =
  (* ground truth: minimum disjoint cover of L_2 by balanced ordered
     rectangles *)
  match Cover_search.minimum_ln 2 with
  | Cover_search.Exact k ->
    (* sanity brackets: at least 2 (L_2 is not a rectangle), at most the
       greedy cover *)
    let greedy =
      List.length (Ucfg_rect.Cover.greedy_disjoint_cover (Ln.language 2) ~n:2)
    in
    Alcotest.(check bool)
      (Printf.sprintf "2 <= %d <= %d" k greedy)
      true
      (k >= 2 && k <= greedy)
  | Cover_search.Budget_exhausted _ -> Alcotest.fail "n=2 should be exact"
  | Cover_search.Interrupted _ -> Alcotest.fail "n=2 should not interrupt"

let test_cover_search_trivial () =
  (* a rectangle needs exactly one rectangle *)
  let target =
    List.of_seq
      (Ucfg_rect.Set_rectangle.members
         (Ucfg_rect.Set_rectangle.of_string_rectangle
            (Ucfg_rect.Rectangle.example8 2 0)))
  in
  match Cover_search.minimum ~n:2 target with
  | Cover_search.Exact 1 -> ()
  | Cover_search.Exact k -> Alcotest.failf "expected 1 rectangle, got %d" k
  | Cover_search.Budget_exhausted _ -> Alcotest.fail "budget"
  | Cover_search.Interrupted _ -> Alcotest.fail "interrupted"

let () =
  Alcotest.run "ucfg_comm"
    [
      ( "matrix",
        [
          Alcotest.test_case "of_language" `Quick test_matrix_basics;
          Alcotest.test_case "of_predicate" `Quick test_matrix_of_predicate;
        ] );
      ( "rank",
        [
          Alcotest.test_case "identity" `Quick test_rank_identity;
          Alcotest.test_case "all ones" `Quick test_rank_all_ones;
          Alcotest.test_case "GF(2) vs mod p" `Quick test_rank_parity_differs;
          Alcotest.test_case "L_n rank 2^n - 1" `Slow test_rank_ln;
        ] );
      ( "fooling",
        [
          Alcotest.test_case "L_n diagonal" `Quick test_fooling_ln;
          Alcotest.test_case "rejects non-fooling" `Quick test_fooling_rejects;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "eval" `Quick test_protocol_eval;
          Alcotest.test_case "computes" `Quick test_protocol_computes;
          Alcotest.test_case "leaves are rectangles" `Quick
            test_protocol_rectangles;
        ] );
      ( "splits",
        [
          Alcotest.test_case "per-split profile" `Quick test_splits_profile;
          Alcotest.test_case "balanced minimum" `Quick test_splits_balanced_min;
        ] );
      ( "biclique",
        [
          Alcotest.test_case "greedy cover valid" `Quick test_biclique_cover;
          Alcotest.test_case "overlap vs disjoint gap" `Quick
            test_biclique_vs_disjoint_gap;
        ] );
      ( "cover-search",
        [
          Alcotest.test_case "L_2 exact" `Quick test_cover_search_l2;
          Alcotest.test_case "single rectangle" `Quick test_cover_search_trivial;
        ] );
    ]
