(* Tests for the serving subsystem: the JSON codec's canonical printer,
   canonicalisation-based cache keys, the self-verifying disk cache
   (including deliberate corruption and concurrent writers), the daemon's
   request handling (cold/warm byte-identity, per-request guard trips as
   structured errors, the R010/R011 input taxonomy), stdin batch ordering
   under jobs 1 and 4, and an in-process bombard smoke run. *)

open Ucfg_word
open Ucfg_cfg
open Ucfg_serve
module G = Grammar
module Exec = Ucfg_exec.Exec

(* flip the process-wide pool, restoring the previous size afterwards *)
let with_global_jobs jobs f =
  let saved = Exec.jobs () in
  Exec.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.set_jobs saved) f

let temp_counter = ref 0

(* a fresh directory per test so cache state never leaks between cases *)
let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucfg-serve-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let json_of s =
  match Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "JSON parse failed on %S: %s" s msg

let member_exn name v =
  match Json.member name v with
  | Some f -> f
  | None -> Alcotest.failf "missing field %S in %s" name (Json.to_string v)

let get_str name v = Option.get (Json.get_string (member_exn name v))
let get_bool name v = Option.get (Json.get_bool (member_exn name v))
let get_int name v = Option.get (Json.get_int (member_exn name v))

(* --- Json ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  (* the printer is canonical: parse ∘ print is the identity on printed
     values, which is what the byte-identity contract rests on *)
  let cases =
    [
      {|{"a": 1, "b": [true, false, null], "c": {"d": "x"}}|};
      {|[1, -2, 3.5, "s"]|};
      {|"plain"|};
      {|{"nested": {"deep": [{"k": "v"}]}}|};
    ]
  in
  List.iter
    (fun s ->
       let printed = Json.to_string (json_of s) in
       Alcotest.(check string) s printed (Json.to_string (json_of printed)))
    cases

let test_json_escapes () =
  let v = json_of {|"line\nbreak A é 😀 \" \\ tab\t"|} in
  (match Json.get_string v with
   | Some s ->
     Alcotest.(check string) "escapes decoded"
       "line\nbreak A \xc3\xa9 \xf0\x9f\x98\x80 \" \\ tab\t" s
   | None -> Alcotest.fail "expected a string");
  (* control characters re-escape on output *)
  Alcotest.(check string) "escaped output" {|"a\nb"|}
    (Json.to_string (Json.Str "a\nb"))

let test_json_errors () =
  let bad = [ "{"; "[1,]"; {|{"a" 1}|}; "tru"; {|"unterminated|}; "{} extra"; "" ] in
  List.iter
    (fun s ->
       match Json.parse s with
       | Ok _ -> Alcotest.failf "expected a parse error on %S" s
       | Error _ -> ())
    bad

let test_json_accessors () =
  let v = json_of {|{"i": 7, "f": 1.5, "s": "x", "b": true, "n": null}|} in
  Alcotest.(check int) "int" 7 (get_int "i" v);
  Alcotest.(check bool) "bool" true (get_bool "b" v);
  Alcotest.(check string) "str" "x" (get_str "s" v);
  Alcotest.(check (option (float 1e-9))) "float via int"
    (Some 7.) (Json.get_float (member_exn "i" v));
  Alcotest.(check bool) "missing member" true
    (Json.member "zz" v = None);
  Alcotest.(check bool) "wrong constructor" true
    (Json.get_string (member_exn "i" v) = None)

(* --- Canon --------------------------------------------------------------- *)

let mk ~names ~start rules =
  G.make ~alphabet:Alphabet.binary ~names ~rules ~start

(* S -> AB | BA; A -> a; B -> b, in several presentations *)
let presentation_a () =
  mk ~names:[| "S"; "A"; "B" |] ~start:0
    [
      { G.lhs = 0; rhs = [ G.N 1; G.N 2 ] };
      { G.lhs = 0; rhs = [ G.N 2; G.N 1 ] };
      { G.lhs = 1; rhs = [ G.T 'a' ] };
      { G.lhs = 2; rhs = [ G.T 'b' ] };
    ]

(* same grammar: nonterminals renumbered (S=2, A=0, B=1), rules of distinct
   nonterminals interleaved differently, different names.  (Alternative
   order within a nonterminal is part of the BFS first-occurrence order, so
   it is kept — Canon documents that it is not a graph-canonical form.) *)
let presentation_b () =
  mk ~names:[| "Left"; "Right"; "Top" |] ~start:2
    [
      { G.lhs = 0; rhs = [ G.T 'a' ] };
      { G.lhs = 2; rhs = [ G.N 0; G.N 1 ] };
      { G.lhs = 1; rhs = [ G.T 'b' ] };
      { G.lhs = 2; rhs = [ G.N 1; G.N 0 ] };
    ]

let test_canon_invariance () =
  Alcotest.(check string) "canonical text agrees"
    (Canon.canonical (presentation_a ()))
    (Canon.canonical (presentation_b ()));
  Alcotest.(check string) "digest agrees"
    (Canon.digest (presentation_a ()))
    (Canon.digest (presentation_b ()))

let test_canon_distinguishes () =
  (* a genuinely different grammar (S -> AB only) must not collide *)
  let smaller =
    mk ~names:[| "S"; "A"; "B" |] ~start:0
      [
        { G.lhs = 0; rhs = [ G.N 1; G.N 2 ] };
        { G.lhs = 1; rhs = [ G.T 'a' ] };
        { G.lhs = 2; rhs = [ G.T 'b' ] };
      ]
  in
  Alcotest.(check bool) "different rule sets differ" false
    (String.equal (Canon.digest (presentation_a ())) (Canon.digest smaller))

let test_canon_keep_names () =
  (* name-sensitive artifacts (lint) must key on names too *)
  Alcotest.(check bool) "keep_names separates presentations" false
    (String.equal
       (Canon.canonical ~keep_names:true (presentation_a ()))
       (Canon.canonical ~keep_names:true (presentation_b ())));
  let hex = Canon.digest (presentation_a ()) in
  Alcotest.(check int) "digest is 32 hex chars" 32 (String.length hex);
  String.iter
    (fun c ->
       if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
         Alcotest.failf "non-hex digest char %C" c)
    hex

(* --- Cache --------------------------------------------------------------- *)

let key_a = String.make 32 'a'
let key_b = String.make 32 'b'

let test_cache_memory () =
  let c = Cache.create ~mem_capacity:2 () in
  Alcotest.(check bool) "miss first" true (Cache.lookup c key_a = Cache.Miss);
  Cache.store c key_a "payload-a";
  (match Cache.lookup c key_a with
   | Cache.Memory v -> Alcotest.(check string) "mem value" "payload-a" v
   | _ -> Alcotest.fail "expected a memory hit");
  (* capacity 2: touching a, then adding b and c, must evict b (oldest) *)
  Cache.store c key_b "payload-b";
  ignore (Cache.lookup c key_a);
  Cache.store c (String.make 32 'c') "payload-c";
  Alcotest.(check bool) "lru evicted the stale key" true
    (Cache.lookup c key_b = Cache.Miss);
  Alcotest.(check bool) "recently used key survives" true
    (match Cache.lookup c key_a with Cache.Memory _ -> true | _ -> false);
  let s = Cache.stats c in
  Alcotest.(check int) "evictions counted" 1 s.Cache.evictions

let test_cache_disk_tier () =
  with_temp_dir (fun dir ->
    let c1 = Cache.create ~dir () in
    Cache.store c1 key_a "persistent-payload";
    (* a fresh instance over the same directory has a cold LRU: the hit
       must come from disk, verified, and then be promoted *)
    let c2 = Cache.create ~dir () in
    (match Cache.lookup c2 key_a with
     | Cache.Disk v -> Alcotest.(check string) "disk value" "persistent-payload" v
     | _ -> Alcotest.fail "expected a disk hit");
    (match Cache.lookup c2 key_a with
     | Cache.Memory _ -> ()
     | _ -> Alcotest.fail "expected promotion into the LRU");
    let s = Cache.stats c2 in
    Alcotest.(check int) "one disk hit" 1 s.Cache.disk_hits;
    Alcotest.(check int) "one mem hit" 1 s.Cache.mem_hits)

let corrupt_entry path mutate =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (mutate bytes);
  close_out oc

let test_cache_corruption () =
  with_temp_dir (fun dir ->
    let payload = "the one true payload" in
    let check_detects label mutate =
      let c = Cache.create ~dir () in
      Cache.store c key_a payload;
      let path = Option.get (Cache.entry_path c key_a) in
      corrupt_entry path mutate;
      (* fresh instance: the LRU copy is gone, the damaged entry is all
         there is — it must be detected, never returned *)
      let c' = Cache.create ~dir () in
      (match Cache.lookup c' key_a with
       | Cache.Corrupt -> ()
       | Cache.Disk v ->
         Alcotest.failf "%s: corrupt entry served verbatim (%S)" label v
       | Cache.Memory _ -> Alcotest.failf "%s: impossible memory hit" label
       | Cache.Miss -> Alcotest.failf "%s: expected Corrupt, got Miss" label);
      Alcotest.(check int) (label ^ ": corruption counted") 1
        (Cache.stats c').Cache.corrupt;
      (* recompute-and-store must repair the entry in place *)
      Cache.store c' key_a payload;
      let c'' = Cache.create ~dir () in
      match Cache.lookup c'' key_a with
      | Cache.Disk v -> Alcotest.(check string) (label ^ ": repaired") payload v
      | _ -> Alcotest.failf "%s: entry not repaired" label
    in
    check_detects "truncated" (fun s -> String.sub s 0 (String.length s - 4));
    check_detects "bit-flipped payload" (fun s ->
      let b = Bytes.of_string s in
      let i = Bytes.length b - 3 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Bytes.to_string b);
    check_detects "mangled header" (fun s -> "xxxx" ^ s);
    check_detects "appended garbage" (fun s -> s ^ "trailing"))

let test_cache_concurrent_writers () =
  with_temp_dir (fun dir ->
    let c = Cache.create ~dir () in
    let values = Array.init 16 (Printf.sprintf "writer-%d-payload") in
    with_global_jobs 4 (fun () ->
      ignore
        (Exec.parallel_map
           (fun v ->
              Cache.store c key_a v;
              ignore (Cache.lookup c key_a))
           (Array.to_list values)));
    (* whatever the interleaving, a fresh read must verify and must be one
       of the written values — a complete entry, never a splice *)
    let c' = Cache.create ~dir () in
    match Cache.lookup c' key_a with
    | Cache.Disk v ->
      Alcotest.(check bool) "surviving entry is one written value" true
        (Array.exists (String.equal v) values)
    | Cache.Corrupt -> Alcotest.fail "concurrent writers corrupted the entry"
    | _ -> Alcotest.fail "expected a disk entry")

let test_cache_disk_eviction () =
  with_temp_dir (fun dir ->
    let payload = String.make 100 'x' in
    (* two entries (~150 bytes each with header) overflow a 200-byte cap *)
    let c = Cache.create ~disk_max_bytes:200 ~dir () in
    Cache.store c key_a payload;
    (* age the first entry so the eviction order is unambiguous even on
       filesystems with coarse mtime resolution *)
    let path_a = Option.get (Cache.entry_path c key_a) in
    Unix.utimes path_a 1000.0 1000.0;
    Cache.store c key_b payload;
    Alcotest.(check bool) "oldest-stamp entry evicted from disk" false
      (Sys.file_exists path_a);
    Alcotest.(check bool) "newest entry survives" true
      (Sys.file_exists (Option.get (Cache.entry_path c key_b)));
    Alcotest.(check bool) "disk evictions counted" true
      ((Cache.stats c).Cache.disk_evictions >= 1);
    (* the LRU copy is untouched; only a cold instance sees the miss *)
    let c' = Cache.create ~dir () in
    Alcotest.(check bool) "cold lookup of the victim is a miss" true
      (Cache.lookup c' key_a = Cache.Miss);
    match Cache.lookup c' key_b with
    | Cache.Disk v -> Alcotest.(check string) "survivor intact" payload v
    | _ -> Alcotest.fail "expected a disk hit on the survivor")

(* --- Server -------------------------------------------------------------- *)

let result_bytes line =
  Json.to_string (member_exn "result" (json_of line))

let test_server_cold_warm_identity () =
  with_temp_dir (fun dir ->
    let srv = Server.create ~cache_dir:(Some dir) () in
    let req = {|{"op": "ambiguity", "kind": "log", "n": 3}|} in
    let cold = Server.handle_line srv req in
    let warm = Server.handle_line srv req in
    let cv = json_of cold and wv = json_of warm in
    Alcotest.(check bool) "cold ok" true (get_bool "ok" cv);
    Alcotest.(check string) "cold computed" "computed" (get_str "source" cv);
    Alcotest.(check string) "warm from memory" "mem" (get_str "source" wv);
    Alcotest.(check bool) "warm flagged cached" true (get_bool "cached" wv);
    Alcotest.(check string) "result bytes identical" (result_bytes cold)
      (result_bytes warm);
    (* a fresh server over the same directory: the disk tier answers, and
       the payload bytes still agree *)
    let srv' = Server.create ~cache_dir:(Some dir) () in
    let disk = Server.handle_line srv' req in
    Alcotest.(check string) "disk source" "disk" (get_str "source" (json_of disk));
    Alcotest.(check string) "disk bytes identical" (result_bytes cold)
      (result_bytes disk))

let test_server_canon_shares_cache () =
  (* two presentations of one grammar share a semantic cache entry *)
  let srv = Server.create ~cache_dir:None () in
  let r1 =
    Server.handle_line srv
      {|{"op": "ambiguity", "grammar": "start: <S>\n<S> -> <A> <B> | <B> <A>\n<A> -> a\n<B> -> b"}|}
  in
  let r2 =
    Server.handle_line srv
      {|{"op": "ambiguity", "grammar": "start: <Top>\n<Right> -> b\n<Top> -> <Left> <Right> | <Right> <Left>\n<Left> -> a"}|}
  in
  let v1 = json_of r1 and v2 = json_of r2 in
  Alcotest.(check string) "same cache key" (get_str "key" v1) (get_str "key" v2);
  Alcotest.(check string) "second presentation hits" "mem" (get_str "source" v2);
  Alcotest.(check string) "same result" (result_bytes r1) (result_bytes r2)

let test_server_guard_trip_not_cached () =
  let srv = Server.create ~cache_dir:None () in
  let tripped =
    Server.handle_line srv
      {|{"op": "check", "property": "universal", "kind": "log", "n": 4, "budget": 1}|}
  in
  let tv = json_of tripped in
  Alcotest.(check bool) "trip is an error response" false (get_bool "ok" tv);
  let err = member_exn "error" tv in
  Alcotest.(check string) "budget trip code" "R002" (get_str "code" err);
  Alcotest.(check int) "guard exit code" 124 (get_int "exit_code" err);
  (* the same request without the budget must compute — the trip was not
     stored under the (resource-independent) cache key *)
  let retry =
    Server.handle_line srv
      {|{"op": "check", "property": "universal", "kind": "log", "n": 4}|}
  in
  let rv = json_of retry in
  Alcotest.(check bool) "retry succeeds" true (get_bool "ok" rv);
  Alcotest.(check string) "retry is computed, not a poisoned hit" "computed"
    (get_str "source" rv)

let test_server_lint_trip_not_cached () =
  (* unlike [check], [SL.lint] swallows the guard exception and renders
     the trip as an R001–R003 warning diagnostic (a partial verdict); the
     server must resurface it as an uncached error, or the partial verdict
     would poison the resource-independent cache key *)
  let srv = Server.create ~cache_dir:None () in
  let tripped =
    Server.handle_line srv
      {|{"op": "lint", "semantic": true, "kind": "log", "n": 4, "budget": 1}|}
  in
  let tv = json_of tripped in
  Alcotest.(check bool) "trip is an error response" false (get_bool "ok" tv);
  let err = member_exn "error" tv in
  Alcotest.(check string) "budget trip code" "R002" (get_str "code" err);
  Alcotest.(check int) "guard exit code" 124 (get_int "exit_code" err);
  (* the same lint with no budget must compute a full verdict — nothing
     partial was stored under the shared key *)
  let retry =
    Server.handle_line srv
      {|{"op": "lint", "semantic": true, "kind": "log", "n": 4}|}
  in
  let rv = json_of retry in
  Alcotest.(check bool) "retry succeeds" true (get_bool "ok" rv);
  Alcotest.(check string) "retry is computed, not a poisoned hit" "computed"
    (get_str "source" rv);
  (* and the full verdict carries no interrupt diagnostic *)
  let diags = Json.to_string (member_exn "diagnostics" (member_exn "result" rv)) in
  List.iter
    (fun code ->
       Alcotest.(check bool)
         (Printf.sprintf "no %s in the full verdict" code)
         false
         (let re = Printf.sprintf {|"%s"|} code in
          let len = String.length diags and n = String.length re in
          let rec scan i =
            i + n <= len && (String.sub diags i n = re || scan (i + 1))
          in
          scan 0))
    [ "R001"; "R002"; "R003" ]

let test_server_unix_socket_safety () =
  with_temp_dir (fun dir ->
    Unix.mkdir dir 0o700;
    let srv = Server.create ~cache_dir:None () in
    (* a regular file at the socket path is someone else's data: refuse
       and leave it untouched *)
    let file_path = Filename.concat dir "not-a-socket" in
    let oc = open_out file_path in
    output_string oc "precious bytes";
    close_out oc;
    (match Server.run_unix srv ~path:file_path with
     | Server.Drained | Server.Forced _ ->
       Alcotest.fail "expected a refusal on a regular file"
     | exception Failure _ -> ());
    let ic = open_in file_path in
    let survived = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Alcotest.(check string) "regular file untouched" "precious bytes" survived;
    (* a socket with a live listener is a running daemon: refuse and keep
       the socket bound *)
    let sock_path = Filename.concat dir "live.sock" in
    let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind listener (Unix.ADDR_UNIX sock_path);
    Unix.listen listener 1;
    Fun.protect
      ~finally:(fun () -> try Unix.close listener with Unix.Unix_error _ -> ())
      (fun () ->
         (match Server.run_unix srv ~path:sock_path with
          | Server.Drained | Server.Forced _ ->
            Alcotest.fail "expected a refusal on a live socket"
          | exception Failure _ -> ());
         Alcotest.(check bool) "live socket not unlinked" true
           (Sys.file_exists sock_path)))

let test_server_input_taxonomy () =
  let srv = Server.create ~cache_dir:None () in
  let check_error line code exit_code =
    let v = json_of (Server.handle_line srv line) in
    Alcotest.(check bool) (code ^ " not ok") false (get_bool "ok" v);
    let err = member_exn "error" v in
    Alcotest.(check string) (code ^ " code") code (get_str "code" err);
    Alcotest.(check int) (code ^ " exit") exit_code (get_int "exit_code" err)
  in
  check_error "this is not json" "R010" 2;
  check_error {|{"op": "lint", "grammar": "start: <S"}|} "R010" 2;
  check_error {|{"op": "frobnicate"}|} "R011" 2;
  check_error {|{"op": "check", "property": "weird", "kind": "log", "n": 3}|}
    "R010" 2;
  (* id of any JSON shape is echoed on errors too *)
  let v = json_of (Server.handle_line srv {|{"op": "frobnicate", "id": [1, "x"]}|}) in
  Alcotest.(check string) "id echoed" {|[1, "x"]|}
    (Json.to_string (member_exn "id" v))

let batch_lines =
  [
    {|{"op": "ping", "id": 1}|};
    {|{"op": "lint", "kind": "log", "n": 3, "id": 2}|};
    {|{"op": "rank", "kind": "log", "n": 3, "id": 3}|};
    {|{"op": "rectangles", "kind": "example4", "n": 3, "id": 4}|};
    {|{"op": "lint", "kind": "log", "n": 3, "id": 5}|};
    {|{"op": "ambiguity", "kind": "example4", "n": 3, "id": 6}|};
  ]

let run_batch srv lines =
  let input = String.concat "\n" lines ^ "\n" in
  let tmp_in = Filename.temp_file "ucfg-serve-in" ".jsonl" in
  let tmp_out = Filename.temp_file "ucfg-serve-out" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp_in; Sys.remove tmp_out)
    (fun () ->
       let oc = open_out tmp_in in
       output_string oc input;
       close_out oc;
       let ic = open_in tmp_in and oc = open_out tmp_out in
       Server.run_stdin srv ic oc;
       close_in ic;
       close_out oc;
       let ic = open_in tmp_out in
       let rec go acc =
         match input_line ic with
         | line -> go (line :: acc)
         | exception End_of_file -> close_in ic; List.rev acc
       in
       let lines = go [] in
       close_in_noerr ic;
       lines)

let test_server_stdin_batch_jobs_invariant () =
  let results jobs =
    with_global_jobs jobs (fun () ->
      let srv = Server.create ~cache_dir:None () in
      run_batch srv batch_lines)
  in
  let r1 = results 1 and r4 = results 4 in
  Alcotest.(check int) "one response per request" (List.length batch_lines)
    (List.length r1);
  (* responses come back in request order: the echoed ids are 1..6 *)
  List.iteri
    (fun i line ->
       Alcotest.(check int)
         (Printf.sprintf "response %d in order" i)
         (i + 1)
         (get_int "id" (json_of line)))
    r1;
  (* the result payloads are jobs-invariant even though the envelope's
     cached flag may differ when equal requests race *)
  List.iter2
    (fun a b ->
       Alcotest.(check string) "jobs 1 vs 4 result bytes" (result_bytes a)
         (result_bytes b))
    r1 r4

let test_server_no_cache_flag () =
  let srv = Server.create ~cache_dir:None () in
  let req = {|{"op": "rank", "kind": "log", "n": 3, "no_cache": true}|} in
  let a = Server.handle_line srv req in
  let b = Server.handle_line srv req in
  Alcotest.(check string) "second run recomputes" "computed"
    (get_str "source" (json_of b));
  Alcotest.(check string) "recomputation is deterministic" (result_bytes a)
    (result_bytes b)

(* --- concurrent daemon ---------------------------------------------------- *)

(* Boot a real daemon on a unix socket in a background thread, run [f]
   against it, then drain and join.  [f] receives the server (for stats
   or targeted drains) and the socket path.  Returns the drain outcome. *)
let with_daemon ?max_connections ?queue_capacity ?idle_timeout_ms
    ?max_request_bytes ?drain_timeout_ms f =
  with_temp_dir (fun dir ->
    Unix.mkdir dir 0o700;
    let path = Filename.concat dir "daemon.sock" in
    let srv =
      Server.create ~cache_dir:None ?max_connections ?queue_capacity
        ?idle_timeout_ms ?max_request_bytes ?drain_timeout_ms ()
    in
    let outcome = ref None in
    let th =
      Thread.create (fun () -> outcome := Some (Server.run_unix srv ~path)) ()
    in
    let rec await_up n =
      if n > 1000 then Alcotest.fail "daemon did not come up"
      else if not (Sys.file_exists path) then begin
        Thread.delay 0.005;
        await_up (n + 1)
      end
    in
    await_up 0;
    Fun.protect
      ~finally:(fun () ->
          Server.request_drain srv;
          Thread.join th)
      (fun () -> f srv path);
    match !outcome with
    | Some o -> o
    | None -> Alcotest.fail "daemon thread died without an outcome")

(* a client connection with a persistent read buffer: responses to
   pipelined requests can arrive many-per-read, so leftover bytes must
   survive between [recv_resp] calls *)
type conn = { fd : Unix.file_descr; mutable left : string }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; left = "" }

let send_raw c s = ignore (Unix.write_substring c.fd s 0 (String.length s))

(* read one response line off [c], waiting up to [timeout]; None on EOF *)
let recv_resp ?(timeout = 30.) c =
  let deadline = Unix.gettimeofday () +. timeout in
  let b = Bytes.create 4096 in
  let take () =
    match String.index_opt c.left '\n' with
    | None -> None
    | Some i ->
      let line = String.sub c.left 0 i in
      c.left <- String.sub c.left (i + 1) (String.length c.left - i - 1);
      Some line
  in
  let rec go () =
    match take () with
    | Some line -> Some line
    | None -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then
          Alcotest.fail "timed out waiting for a response"
        else
          match Unix.select [ c.fd ] [] [] remaining with
          | [], _, _ -> go ()
          | _ -> (
              match Unix.read c.fd b 0 (Bytes.length b) with
              | 0 -> None
              | n ->
                c.left <- c.left ^ Bytes.sub_string b 0 n;
                go ()
              | exception
                  Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                None))
  in
  go ()

let close_quiet c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let error_code_of line =
  let v = json_of line in
  match Json.member "error" v with
  | None -> None
  | Some err -> Some (get_str "code" err)

let test_server_parallel_clients_byte_identical () =
  (* byte-identity gate: N concurrent clients hammering the same pool get
     exactly the bytes a serial in-process baseline computes *)
  let reqs =
    [|
      {|{"op": "ambiguity", "kind": "log", "n": 3}|};
      {|{"op": "rank", "kind": "log", "n": 3}|};
      {|{"op": "lint", "kind": "example4", "n": 3}|};
    |]
  in
  let baseline_srv = Server.create ~cache_dir:None () in
  let baseline =
    Array.map (fun r -> result_bytes (Server.handle_line baseline_srv r)) reqs
  in
  ignore
    (* queue headroom over the client count: admission is racy (workers
       may not have popped yet when the last client lands), and this
       test is about byte identity, not shedding *)
    (with_daemon ~max_connections:4 ~queue_capacity:8 (fun _srv path ->
         let errors = Atomic.make 0 and mismatches = Atomic.make 0 in
         let client () =
           let fd = connect_unix path in
           Fun.protect
             ~finally:(fun () -> close_quiet fd)
             (fun () ->
                Array.iteri
                  (fun i r ->
                     send_raw fd (r ^ "\n");
                     match recv_resp fd with
                     | None -> Atomic.incr errors
                     | Some resp ->
                       if not (get_bool "ok" (json_of resp)) then
                         Atomic.incr errors
                       else if
                         not (String.equal (result_bytes resp) baseline.(i))
                       then Atomic.incr mismatches)
                  reqs)
         in
         let threads = List.init 6 (fun _ -> Thread.create client ()) in
         List.iter Thread.join threads;
         Alcotest.(check int) "no client errors" 0 (Atomic.get errors);
         Alcotest.(check int) "no byte mismatches vs serial baseline" 0
           (Atomic.get mismatches)))

let test_server_pipelined_in_order () =
  (* several requests written back-to-back on one connection come back in
     request order, one response per request *)
  ignore
    (with_daemon (fun _srv path ->
         let fd = connect_unix path in
         Fun.protect
           ~finally:(fun () -> close_quiet fd)
           (fun () ->
              let lines =
                List.init 5 (fun i ->
                    Printf.sprintf {|{"op": "ping", "id": %d}|} i)
              in
              send_raw fd (String.concat "\n" lines ^ "\n");
              List.iteri
                (fun i _ ->
                   match recv_resp fd with
                   | None -> Alcotest.fail "connection closed mid-pipeline"
                   | Some resp ->
                     Alcotest.(check int)
                       (Printf.sprintf "response %d in order" i)
                       i
                       (get_int "id" (json_of resp)))
                lines)))

let test_server_slow_client_isolation () =
  (* a stalled client on one worker must not delay a fast client on
     another: the ping must answer while the stall is still pending *)
  ignore
    (with_daemon ~max_connections:2 ~idle_timeout_ms:10_000. (fun _srv path ->
         let slow = connect_unix path in
         Fun.protect
           ~finally:(fun () -> close_quiet slow)
           (fun () ->
              send_raw slow {|{"op": "pi|};
              (* half a request: the worker is now blocked reading *)
              Thread.delay 0.05;
              let fd = connect_unix path in
              Fun.protect
                ~finally:(fun () -> close_quiet fd)
                (fun () ->
                   let t0 = Unix.gettimeofday () in
                   send_raw fd "{\"op\": \"ping\"}\n";
                   match recv_resp fd with
                   | None -> Alcotest.fail "fast client got no response"
                   | Some resp ->
                     let elapsed = Unix.gettimeofday () -. t0 in
                     Alcotest.(check bool) "ping ok" true
                       (get_bool "ok" (json_of resp));
                     Alcotest.(check bool)
                       "fast client not delayed by the stalled one" true
                       (elapsed < 5.)))))

let test_server_shed_r013 () =
  (* one worker, one queue slot: the third concurrent connection must be
     shed immediately with the retriable R013 *)
  ignore
    (with_daemon ~max_connections:1 ~queue_capacity:1
       ~idle_timeout_ms:10_000. (fun srv path ->
         let a = connect_unix path in
         Thread.delay 0.1;
         (* a occupies the worker; b fills the queue slot *)
         let b = connect_unix path in
         Thread.delay 0.1;
         let c = connect_unix path in
         Fun.protect
           ~finally:(fun () ->
               close_quiet a;
               close_quiet b;
               close_quiet c)
           (fun () ->
              (match recv_resp c with
               | None -> Alcotest.fail "shed connection got no R013 response"
               | Some resp ->
                 Alcotest.(check (option string)) "R013 on shed"
                   (Some "R013") (error_code_of resp);
                 let err = member_exn "error" (json_of resp) in
                 Alcotest.(check int) "retriable exit code" 75
                   (get_int "exit_code" err);
                 (* after the refusal the daemon closes the connection *)
                 Alcotest.(check bool) "shed connection closed" true
                   (recv_resp c = None));
              (* freeing the worker lets the queued connection be served *)
              close_quiet a;
              send_raw b "{\"op\": \"ping\"}\n";
              (match recv_resp b with
               | None -> Alcotest.fail "queued connection never served"
               | Some resp ->
                 Alcotest.(check bool) "queued connection served" true
                   (get_bool "ok" (json_of resp)));
              (* the daemon's own books agree *)
              let stats = json_of (Server.handle_line srv {|{"op":"stats"}|}) in
              let result = member_exn "result" stats in
              Alcotest.(check bool) "shed counted" true
                (get_int "shed" result >= 1))))

let test_server_read_deadline_r014 () =
  (* slow-loris: half a request then silence must get R014 within the
     deadline (not hang a worker forever), then a close *)
  ignore
    (with_daemon ~idle_timeout_ms:200. (fun srv path ->
         let fd = connect_unix path in
         Fun.protect
           ~finally:(fun () -> close_quiet fd)
           (fun () ->
              send_raw fd {|{"op": "lint", "kind|};
              (match recv_resp fd with
               | None -> Alcotest.fail "expected an R014 response"
               | Some resp ->
                 Alcotest.(check (option string)) "R014 on stalled request"
                   (Some "R014") (error_code_of resp);
                 let err = member_exn "error" (json_of resp) in
                 Alcotest.(check int) "retriable exit code" 75
                   (get_int "exit_code" err);
                 Alcotest.(check bool) "connection closed after R014" true
                   (recv_resp fd = None));
              let stats = json_of (Server.handle_line srv {|{"op":"stats"}|}) in
              Alcotest.(check bool) "read timeout counted" true
                (get_int "read_timeouts" (member_exn "result" stats) >= 1))))

let test_server_oversized_r015 () =
  ignore
    (with_daemon ~max_request_bytes:100 (fun _srv path ->
         let fd = connect_unix path in
         Fun.protect
           ~finally:(fun () -> close_quiet fd)
           (fun () ->
              send_raw fd (String.make 300 'a');
              match recv_resp fd with
              | None -> Alcotest.fail "expected an R015 response"
              | Some resp ->
                Alcotest.(check (option string)) "R015 on oversized frame"
                  (Some "R015") (error_code_of resp);
                Alcotest.(check bool) "connection closed after R015" true
                  (recv_resp fd = None))));
  (* a COMPLETE oversized line delivered in one write must be capped
     too — the newline must not let the frame outrun the size check *)
  ignore
    (with_daemon ~max_request_bytes:100 (fun _srv path ->
         let fd = connect_unix path in
         Fun.protect
           ~finally:(fun () -> close_quiet fd)
           (fun () ->
              send_raw fd
                ("{\"op\": \"ping\", \"pad\": \"" ^ String.make 300 'x'
               ^ "\"}\n");
              match recv_resp fd with
              | None -> Alcotest.fail "expected an R015 response"
              | Some resp ->
                Alcotest.(check (option string))
                  "R015 on complete oversized line" (Some "R015")
                  (error_code_of resp))));
  (* a request within the cap on the same daemon settings still serves *)
  ignore
    (with_daemon ~max_request_bytes:100 (fun _srv path ->
         let fd = connect_unix path in
         Fun.protect
           ~finally:(fun () -> close_quiet fd)
           (fun () ->
              send_raw fd "{\"op\": \"ping\"}\n";
              match recv_resp fd with
              | None -> Alcotest.fail "small request unserved"
              | Some resp ->
                Alcotest.(check bool) "within-cap request ok" true
                  (get_bool "ok" (json_of resp)))))

let test_server_client_abort_contained () =
  (* a client that sends a request and hangs up before reading must cost
     only its own connection — the daemon keeps serving *)
  ignore
    (with_daemon (fun _srv path ->
         for _ = 1 to 5 do
           let fd = connect_unix path in
           send_raw fd "{\"op\": \"ambiguity\", \"kind\": \"log\", \"n\": 4}\n";
           close_quiet fd
         done;
         (* the daemon must still answer — R013 while it digests the
            aborted requests is fine (retriable by contract), anything
            else is not *)
         let deadline = Unix.gettimeofday () +. 30. in
         let rec ping () =
           let fd = connect_unix path in
           let answer =
             Fun.protect
               ~finally:(fun () -> close_quiet fd)
               (fun () ->
                  send_raw fd "{\"op\": \"ping\"}\n";
                  recv_resp fd)
           in
           match answer with
           | Some resp when get_bool "ok" (json_of resp) -> ()
           | Some resp
             when error_code_of resp = Some "R013"
                  && Unix.gettimeofday () < deadline ->
             Thread.delay 0.1;
             ping ()
           | Some resp ->
             Alcotest.failf "daemon unhealthy after client aborts: %s" resp
           | None -> Alcotest.fail "daemon died after client aborts"
         in
         ping ()))

let test_server_drain_completes_inflight () =
  (* a drain that arrives while a request is in flight: the request is
     answered (ok, or R003 if the drain had to cancel it), the daemon
     never wedges, and the loop returns Drained *)
  let got = ref None in
  let outcome =
    with_daemon ~drain_timeout_ms:10_000. (fun srv path ->
        let client =
          Thread.create
            (fun () ->
               let fd = connect_unix path in
               Fun.protect
                 ~finally:(fun () -> close_quiet fd)
                 (fun () ->
                    send_raw fd
                      "{\"op\": \"lint\", \"semantic\": true, \"kind\": \
                       \"log\", \"n\": 6}\n";
                    got := recv_resp fd))
            ()
        in
        Thread.delay 0.05;
        Server.request_drain srv;
        Thread.join client)
  in
  (match outcome with
   | Server.Drained -> ()
   | Server.Forced n -> Alcotest.failf "drain forced with %d stuck" n);
  match !got with
  | None -> Alcotest.fail "in-flight request lost by the drain"
  | Some resp ->
    let v = json_of resp in
    if get_bool "ok" v then ()
    else
      Alcotest.(check (option string)) "cancelled in-flight answers R003"
        (Some "R003") (error_code_of resp)

let test_server_drain_cancels_stragglers () =
  (* a request far longer than the drain deadline must be cancelled and
     answered R003 — drain completes without waiting it out *)
  let got = ref None in
  let t0 = Unix.gettimeofday () in
  let outcome =
    with_daemon ~drain_timeout_ms:50. (fun srv path ->
        let client =
          Thread.create
            (fun () ->
               let fd = connect_unix path in
               Fun.protect
                 ~finally:(fun () -> close_quiet fd)
                 (fun () ->
                    (* no timeout_ms: only cancellation can stop this one;
                       rectangles at this size outlives the 50 ms drain
                       deadline and polls its guard as it enumerates *)
                    send_raw fd
                      "{\"op\": \"rectangles\", \"kind\": \"log\", \"n\": \
                       10}\n";
                    got := recv_resp fd))
            ()
        in
        Thread.delay 0.05;
        Server.request_drain srv;
        Thread.join client)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match outcome with
   | Server.Drained -> ()
   | Server.Forced n -> Alcotest.failf "drain forced with %d stuck" n);
  Alcotest.(check bool) "drain did not wait out the computation" true
    (elapsed < 20.);
  match !got with
  | None -> Alcotest.fail "cancelled request got no response"
  | Some resp ->
    let v = json_of resp in
    if get_bool "ok" v then ()  (* finished under the wire: acceptable *)
    else begin
      Alcotest.(check (option string)) "straggler answers R003" (Some "R003")
        (error_code_of resp);
      Alcotest.(check int) "guard-trip exit code" 124
        (get_int "exit_code" (member_exn "error" (json_of resp)))
    end

let test_server_stats_concurrency_fields () =
  let srv = Server.create ~cache_dir:None () in
  let v = json_of (Server.handle_line srv {|{"op": "stats"}|}) in
  let result = member_exn "result" v in
  Alcotest.(check bool) "in_flight counts this request" true
    (get_int "in_flight" result >= 1);
  Alcotest.(check bool) "peak tracked" true
    (get_int "peak_concurrency" result >= 1);
  Alcotest.(check int) "no sheds yet" 0 (get_int "shed" result);
  Alcotest.(check int) "no read timeouts yet" 0
    (get_int "read_timeouts" result);
  Alcotest.(check int) "no client aborts yet" 0
    (get_int "client_aborts" result)

(* --- Workq ---------------------------------------------------------------- *)

let test_workq_bounded_and_sheds () =
  let gate = Mutex.create () in
  Mutex.lock gate;
  let done_count = Atomic.make 0 in
  let wq =
    Ucfg_exec.Workq.create ~workers:1 ~capacity:1 (fun () ->
        Mutex.lock gate;
        Mutex.unlock gate;
        Atomic.incr done_count)
  in
  let rec wait_busy n =
    if n > 1000 then Alcotest.fail "worker never picked up the item"
    else if Ucfg_exec.Workq.busy wq = 0 then begin
      Thread.delay 0.005;
      wait_busy (n + 1)
    end
  in
  Alcotest.(check bool) "first accepted" true (Ucfg_exec.Workq.push wq ());
  wait_busy 0;
  Alcotest.(check bool) "second queued" true (Ucfg_exec.Workq.push wq ());
  Alcotest.(check bool) "third refused (queue full)" false
    (Ucfg_exec.Workq.push wq ());
  Mutex.unlock gate;
  let deadline = Unix.gettimeofday () +. 5. in
  Alcotest.(check bool) "drains to idle" true
    (Ucfg_exec.Workq.await_idle wq ~deadline);
  Alcotest.(check int) "both accepted items ran" 2 (Atomic.get done_count);
  Alcotest.(check bool) "push after stop refused" false
    (let _ = Ucfg_exec.Workq.stop wq in
     Ucfg_exec.Workq.push wq ());
  Ucfg_exec.Workq.join wq

let test_workq_stop_returns_queued () =
  let gate = Mutex.create () in
  Mutex.lock gate;
  let wq =
    Ucfg_exec.Workq.create ~workers:1 ~capacity:4 (fun _ ->
        Mutex.lock gate;
        Mutex.unlock gate)
  in
  Alcotest.(check bool) "a" true (Ucfg_exec.Workq.push wq 1);
  let rec wait_busy n =
    if n > 1000 then Alcotest.fail "worker never started"
    else if Ucfg_exec.Workq.busy wq = 0 then begin
      Thread.delay 0.005;
      wait_busy (n + 1)
    end
  in
  wait_busy 0;
  Alcotest.(check bool) "b" true (Ucfg_exec.Workq.push wq 2);
  Alcotest.(check bool) "c" true (Ucfg_exec.Workq.push wq 3);
  let leftover = Ucfg_exec.Workq.stop wq in
  Alcotest.(check (list int)) "unstarted items back in order" [ 2; 3 ]
    leftover;
  Mutex.unlock gate;
  Ucfg_exec.Workq.join wq;
  Alcotest.(check (list int)) "stop idempotent" []
    (Ucfg_exec.Workq.stop wq)

(* --- Bombard ------------------------------------------------------------- *)

let test_bombard_smoke () =
  with_temp_dir (fun dir ->
    let srv = Server.create ~cache_dir:(Some dir) () in
    let report =
      Bombard.run ~profile:"smoke" ~seed:7 ~requests:25
        (Server.handle_line srv)
    in
    Alcotest.(check bool) "no errors, no mismatches" true (Bombard.ok report);
    Alcotest.(check int) "cold phase covers the pool" report.Bombard.distinct
      report.Bombard.cold.Bombard.count;
    (* after the cold phase every warm draw is a repeat: all must hit *)
    Alcotest.(check (float 1e-9)) "warm phase fully cached" 1.0
      report.Bombard.warm_hit_ratio;
    (* the JSON report parses and carries the gate fields *)
    let v = json_of (Bombard.to_json report) in
    Alcotest.(check string) "consistency ok" "ok" (get_str "consistency" v);
    Alcotest.(check int) "errors serialised" 0 (get_int "errors" v))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "canonical roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "canon",
        [
          Alcotest.test_case "presentation invariance" `Quick
            test_canon_invariance;
          Alcotest.test_case "distinguishes languages" `Quick
            test_canon_distinguishes;
          Alcotest.test_case "keep_names and digest shape" `Quick
            test_canon_keep_names;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memory LRU" `Quick test_cache_memory;
          Alcotest.test_case "disk tier" `Quick test_cache_disk_tier;
          Alcotest.test_case "corruption detected and repaired" `Quick
            test_cache_corruption;
          Alcotest.test_case "concurrent writers" `Quick
            test_cache_concurrent_writers;
          Alcotest.test_case "disk-tier byte cap eviction" `Quick
            test_cache_disk_eviction;
        ] );
      ( "server",
        [
          Alcotest.test_case "cold/warm/disk byte identity" `Quick
            test_server_cold_warm_identity;
          Alcotest.test_case "canonicalisation shares entries" `Quick
            test_server_canon_shares_cache;
          Alcotest.test_case "guard trip is an uncached error" `Quick
            test_server_guard_trip_not_cached;
          Alcotest.test_case "semantic lint trip is an uncached error" `Quick
            test_server_lint_trip_not_cached;
          Alcotest.test_case "unix socket path safety" `Quick
            test_server_unix_socket_safety;
          Alcotest.test_case "R010/R011 taxonomy" `Quick
            test_server_input_taxonomy;
          Alcotest.test_case "stdin batch order and jobs invariance" `Quick
            test_server_stdin_batch_jobs_invariant;
          Alcotest.test_case "no_cache recomputes deterministically" `Quick
            test_server_no_cache_flag;
          Alcotest.test_case "stats concurrency fields" `Quick
            test_server_stats_concurrency_fields;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "parallel clients byte-identical" `Quick
            test_server_parallel_clients_byte_identical;
          Alcotest.test_case "pipelined responses in request order" `Quick
            test_server_pipelined_in_order;
          Alcotest.test_case "slow client does not delay fast client" `Quick
            test_server_slow_client_isolation;
          Alcotest.test_case "overload sheds with R013" `Quick
            test_server_shed_r013;
          Alcotest.test_case "read deadline trips R014" `Quick
            test_server_read_deadline_r014;
          Alcotest.test_case "oversized request trips R015" `Quick
            test_server_oversized_r015;
          Alcotest.test_case "aborting client contained" `Quick
            test_server_client_abort_contained;
          Alcotest.test_case "drain completes in-flight" `Quick
            test_server_drain_completes_inflight;
          Alcotest.test_case "drain cancels stragglers" `Quick
            test_server_drain_cancels_stragglers;
        ] );
      ( "workq",
        [
          Alcotest.test_case "bounded queue sheds" `Quick
            test_workq_bounded_and_sheds;
          Alcotest.test_case "stop returns queued items" `Quick
            test_workq_stop_returns_queued;
        ] );
      ( "bombard",
        [ Alcotest.test_case "in-process smoke" `Quick test_bombard_smoke ] );
    ]
