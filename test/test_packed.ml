(* The packed-language backend and the rule-indexed counting kernels:
   [Packed] agrees with the set representation on every operation, the
   CYK / Count_word int fast paths agree with the big-integer paths across
   the overflow boundary, the batch APIs agree with per-word calls, and
   everything is invariant under the job count. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_exec
module Bignum = Ucfg_util.Bignum

let lang = Alcotest.testable Lang.pp Lang.equal
let bignum = Alcotest.testable Bignum.pp Bignum.equal

(* flip the process-wide pool, restoring the previous size afterwards *)
let with_global_jobs jobs f =
  let saved = Exec.jobs () in
  Exec.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.set_jobs saved) f

(* --- generators -------------------------------------------------------- *)

(* a random uniform-length binary language: a length <= 12 and a subset of
   codes below 2^len, spanning both the dense (len <= 16 here, always) and
   the code-array construction paths *)
let gen_word len =
  QCheck.Gen.map
    (fun bits -> String.init len (fun i -> if (bits lsr i) land 1 = 1 then 'b' else 'a'))
    (QCheck.Gen.int_bound (max 0 ((1 lsl len) - 1)))

let gen_lang =
  QCheck.Gen.(
    int_range 0 12 >>= fun len ->
    list_size (int_bound 40) (gen_word len) >>= fun ws -> return (len, ws))

let arb_lang = QCheck.make ~print:(fun (_, ws) -> String.concat "," ws) gen_lang

let arb_lang_pair =
  QCheck.make
    ~print:(fun ((_, a), (_, b)) ->
      String.concat "," a ^ " / " ^ String.concat "," b)
    QCheck.Gen.(
      gen_lang >>= fun (len, a) ->
      list_size (int_bound 40) (gen_word len) >>= fun b ->
      return ((len, a), (len, b)))

(* the set-backed reference: plain sorted-unique word lists *)
let ref_of ws = List.sort_uniq compare ws

let packed_of ws = Lang.pack (Lang.of_list ws)

(* --- Packed vs the set representation ---------------------------------- *)

let prop_pack_roundtrip =
  QCheck.Test.make ~name:"pack is lossless and sorted" ~count:500 arb_lang
    (fun (_, ws) ->
       let l = packed_of ws in
       (ws = [] || Lang.to_packed l <> None)
       && Lang.elements l = ref_of ws)

let prop_boolean_ops_agree =
  QCheck.Test.make ~name:"union/inter/diff agree with sets" ~count:500
    arb_lang_pair
    (fun ((_, a), (_, b)) ->
       let pa = packed_of a and pb = packed_of b in
       let sa = ref_of a and sb = ref_of b in
       Lang.elements (Lang.union pa pb)
       = List.sort_uniq compare (sa @ sb)
       && Lang.elements (Lang.inter pa pb)
          = List.filter (fun w -> List.mem w sb) sa
       && Lang.elements (Lang.diff pa pb)
          = List.filter (fun w -> not (List.mem w sb)) sa)

let prop_predicates_agree =
  QCheck.Test.make ~name:"equal/subset/disjoint/mem agree with sets"
    ~count:500 arb_lang_pair
    (fun ((_, a), (_, b)) ->
       let pa = packed_of a and pb = packed_of b in
       let sa = ref_of a and sb = ref_of b in
       Lang.equal pa pb = (sa = sb)
       && Lang.subset pa pb = List.for_all (fun w -> List.mem w sb) sa
       && Lang.disjoint pa pb
          = List.for_all (fun w -> not (List.mem w sb)) sa
       && List.for_all (fun w -> Lang.mem w pa) sa
       && Lang.cardinal pa = List.length sa)

let prop_concat_agrees =
  QCheck.Test.make ~name:"concat agrees with sets (and with |A|*|B|)"
    ~count:300 arb_lang_pair
    (fun ((_, a), (_, b)) ->
       let pa = packed_of a and pb = packed_of b in
       let sa = ref_of a and sb = ref_of b in
       let brute =
         List.sort_uniq compare
           (List.concat_map (fun u -> List.map (fun v -> u ^ v) sb) sa)
       in
       let c = Lang.concat pa pb in
       Lang.elements c = brute
       && Lang.cardinal c = List.length sa * List.length sb)

let prop_complement_full_agree =
  QCheck.Test.make ~name:"full/complement_within agree with sets" ~count:300
    arb_lang
    (fun (len, ws) ->
       let p = packed_of ws in
       let full = Lang.full Alphabet.binary len in
       let comp = Lang.complement_within Alphabet.binary len p in
       Lang.cardinal full = 1 lsl len
       && Lang.cardinal comp = (1 lsl len) - List.length (ref_of ws)
       && Lang.is_empty (Lang.inter comp p)
       && Lang.equal (Lang.union comp p) full)

let prop_iteration_order =
  QCheck.Test.make
    ~name:"iter/fold/to_seq/choose visit lexicographic order" ~count:300
    arb_lang
    (fun (_, ws) ->
       let p = packed_of ws in
       let sorted = ref_of ws in
       let via_iter = ref [] in
       Lang.iter (fun w -> via_iter := w :: !via_iter) p;
       List.rev !via_iter = sorted
       && Lang.fold (fun w acc -> w :: acc) p [] = List.rev sorted
       && List.of_seq (Lang.to_seq p) = sorted
       && Lang.choose_opt p
          = (match sorted with [] -> None | w :: _ -> Some w))

let prop_lengths_sorted =
  (* the satellite fix: mixed-length accumulation via sort_uniq *)
  QCheck.Test.make ~name:"lengths is sorted-unique on mixed languages"
    ~count:300
    QCheck.(small_list (string_gen_of_size (Gen.int_bound 6) (Gen.oneofl [ 'a'; 'b'; 'c' ])))
    (fun ws ->
       let l = Lang.of_list ws in
       Lang.lengths l
       = List.sort_uniq compare (List.map String.length (ref_of ws)))

let test_ln_packed () =
  (* L_n now materialises straight into the packed backend *)
  List.iter
    (fun n ->
       let l = Ln.language n in
       Alcotest.(check bool)
         (Printf.sprintf "L_%d packed" n)
         true
         (Lang.to_packed l <> None);
       Alcotest.(check bool)
         (Printf.sprintf "L_%d cardinal" n)
         true
         (Bignum.equal (Ln.cardinal n) (Bignum.of_int (Lang.cardinal l)));
       Alcotest.(check bool)
         (Printf.sprintf "L_%d membership" n)
         true
         (Lang.for_all (Ln.mem n) l))
    [ 1; 2; 3; 4 ]

(* --- the counting kernels across the overflow boundary ----------------- *)

(* S -> S S | a counts binary trees: a^(n+1) has Catalan(n) parse trees.
   Catalan(35) overflows a 63-bit int, so checking a^33 .. a^37 drives the
   CYK kernel across the int -> Bignum escape and validates both sides
   against an independent big-integer recurrence. *)
let catalan_grammar =
  Grammar.make ~alphabet:Alphabet.binary ~names:[| "S" |]
    ~rules:
      Grammar.
        [
          { lhs = 0; rhs = [ N 0; N 0 ] }; { lhs = 0; rhs = [ T 'a' ] };
        ]
    ~start:0

let catalan =
  (* C_0 = 1, C_{n+1} = Σ C_i · C_{n-i} *)
  let memo = Hashtbl.create 64 in
  let rec c n =
    if n = 0 then Bignum.one
    else
      match Hashtbl.find_opt memo n with
      | Some v -> v
      | None ->
        let total = ref Bignum.zero in
        for i = 0 to n - 1 do
          total := Bignum.add !total (Bignum.mul (c i) (c (n - 1 - i)))
        done;
        Hashtbl.replace memo n !total;
        !total
  in
  c

let test_cyk_overflow_boundary () =
  List.iter
    (fun n ->
       Alcotest.check bignum
         (Printf.sprintf "Catalan(%d)" (n - 1))
         (catalan (n - 1))
         (Cyk.count_trees catalan_grammar (String.make n 'a')))
    [ 1; 2; 5; 33; 34; 35; 36; 37 ]

let test_cyk_batch_agrees () =
  let ws = List.init 38 (fun n -> String.make n 'a') in
  Alcotest.(check (list string))
    "batch = per-word"
    (List.map Bignum.to_string (List.map (Cyk.count_trees catalan_grammar) ws))
    (List.map Bignum.to_string (Cyk.count_trees_batch catalan_grammar ws))

let test_count_word_batch_agrees () =
  let g = Constructions.log_cfg 4 in
  let ws = Lang.elements (Analysis.language_exn g) in
  Alcotest.(check (list string))
    "batch = per-word"
    (List.map Bignum.to_string (List.map (Count_word.trees g) ws))
    (List.map Bignum.to_string (Count_word.trees_batch g ws))

let test_cyk_agrees_with_count_word () =
  (* two independent counting algorithms (indexed CYK on CNF vs the
     general-grammar DP) must agree word by word *)
  let g =
    Grammar.make ~alphabet:Alphabet.binary ~names:[| "S"; "A"; "B" |]
      ~rules:
        Grammar.
          [
            { lhs = 0; rhs = [ N 1; N 2 ] };
            { lhs = 0; rhs = [ N 2; N 1 ] };
            { lhs = 1; rhs = [ T 'a' ] };
            { lhs = 2; rhs = [ T 'b' ] };
            { lhs = 2; rhs = [ N 1; N 1 ] };
          ]
      ~start:0
  in
  Lang.iter
    (fun w ->
       Alcotest.check bignum w (Count_word.trees g w) (Cyk.count_trees g w))
    (Lang.full Alphabet.binary 4)

(* --- job-count invariance ---------------------------------------------- *)

let prop_language_jobs_invariant =
  QCheck.Test.make ~name:"Analysis.language invariant under UCFG_JOBS"
    ~count:8
    QCheck.(int_range 2 5)
    (fun n ->
       let g = Constructions.log_cfg n in
       let l1 = with_global_jobs 1 (fun () -> Analysis.language_exn g) in
       let l4 = with_global_jobs 4 (fun () -> Analysis.language_exn g) in
       Lang.equal l1 l4
       && Lang.elements l1 = Lang.elements l4
       && Lang.equal l1 (Ln.language n))

let test_profile_jobs_invariant () =
  let g = Constructions.log_cfg 4 in
  let p1 = with_global_jobs 1 (fun () -> Ambiguity.profile g) in
  let p4 = with_global_jobs 4 (fun () -> Ambiguity.profile g) in
  Alcotest.(check int) "word_total" p1.Ambiguity.word_total p4.Ambiguity.word_total;
  Alcotest.(check int)
    "ambiguous_words" p1.Ambiguity.ambiguous_words p4.Ambiguity.ambiguous_words;
  Alcotest.check bignum "max_trees" p1.Ambiguity.max_trees p4.Ambiguity.max_trees;
  Alcotest.(check (list (pair string int)))
    "histogram" p1.Ambiguity.histogram p4.Ambiguity.histogram

let test_concat_jobs_invariant () =
  (* large packed product: exercises the chunked parallel path *)
  let l = Ln.language 4 in
  let c1 = with_global_jobs 1 (fun () -> Lang.concat l l) in
  let c4 = with_global_jobs 4 (fun () -> Lang.concat l l) in
  Alcotest.check lang "jobs 1 = jobs 4" c1 c4;
  Alcotest.(check bool) "stays packed" true (Lang.to_packed c1 <> None);
  Alcotest.(check int)
    "cardinal" (Lang.cardinal l * Lang.cardinal l) (Lang.cardinal c1)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pack_roundtrip; prop_boolean_ops_agree; prop_predicates_agree;
      prop_concat_agrees; prop_complement_full_agree; prop_iteration_order;
      prop_lengths_sorted; prop_language_jobs_invariant;
    ]

let () =
  Alcotest.run "ucfg_packed"
    [
      ( "packed",
        Alcotest.test_case "L_n is packed" `Quick test_ln_packed :: qtests );
      ( "kernels",
        [
          Alcotest.test_case "CYK across the overflow boundary" `Quick
            test_cyk_overflow_boundary;
          Alcotest.test_case "CYK batch = per-word" `Quick
            test_cyk_batch_agrees;
          Alcotest.test_case "Count_word batch = per-word" `Quick
            test_count_word_batch_agrees;
          Alcotest.test_case "CYK = Count_word" `Quick
            test_cyk_agrees_with_count_word;
          Alcotest.test_case "profile invariant under jobs" `Quick
            test_profile_jobs_invariant;
          Alcotest.test_case "packed concat invariant under jobs" `Quick
            test_concat_jobs_invariant;
        ] );
    ]
