(* Equivalence properties for the PR's bitset kernel: the packed rectangle
   backend, the packed cover sweeps, the rewritten GF(2) elimination and
   greedy covers, the factorised discrepancy and the census-based
   ambiguity profile must all agree with their enumeration-based
   references — and be invariant under the pool's job count. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_rect
module Bitset = Ucfg_util.Bitset
module Rng = Ucfg_util.Rng
module Bignum = Ucfg_util.Bignum
module Matrix = Ucfg_comm.Matrix
module Rank = Ucfg_comm.Rank

let arb_seed = QCheck.int_range 0 100_000

(* ---------- generators ---------- *)

let random_lang rng ~len ~max_card =
  let mask = (1 lsl len) - 1 in
  Lang.of_list
    (List.init (1 + Rng.int rng max_card) (fun _ ->
         Word.of_bits ~len (Rng.bits62 rng land mask)))

let random_rectangle rng =
  let n1 = Rng.int rng 3 and n2 = 1 + Rng.int rng 3 and n3 = Rng.int rng 3 in
  Rectangle.make ~n1 ~n2 ~n3
    ~outer:(random_lang rng ~len:(n1 + n3) ~max_card:6)
    ~middle:(random_lang rng ~len:n2 ~max_card:6)

(* ---------- packed rectangle vs set rectangle ---------- *)

let prop_packed_cardinal_mem =
  QCheck.Test.make ~name:"packed rectangle: cardinal/mem/codes = set backend"
    ~count:60 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let r = random_rectangle rng in
      match Packed_rectangle.of_rectangle r with
      | None -> QCheck.Test.fail_report "binary rectangle must pack"
      | Some p ->
        let lang = Rectangle.materialize r in
        Packed_rectangle.cardinal p = Rectangle.cardinal r
        && Lang.equal (Rectangle.materialize (Packed_rectangle.to_rectangle p))
             lang
        && Lang.equal (Lang.of_packed (Packed_rectangle.to_packed p)) lang
        && Lang.fold
             (fun w acc -> acc && Packed_rectangle.mem p w)
             lang true
        && Seq.fold_left
             (fun acc w -> acc && Packed_rectangle.mem p w = Rectangle.mem r w)
             true
             (Lang.to_seq
                (Lang.full Alphabet.binary (Rectangle.word_length r)))
        && begin
          (* codes: strictly increasing, one per member *)
          let cs = Packed_rectangle.codes p in
          Array.length cs = Rectangle.cardinal r
          && Array.for_all (fun c -> Packed_rectangle.mem_code p c) cs
          && begin
            let ok = ref true in
            for i = 1 to Array.length cs - 1 do
              if cs.(i - 1) >= cs.(i) then ok := false
            done;
            !ok
          end
        end)

let prop_packed_disjoint =
  QCheck.Test.make ~name:"packed rectangle: disjoint = empty intersection"
    ~count:80 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let r1 = random_rectangle rng in
      (* same split half the time, so the side-wise fast path is hit *)
      let r2 =
        if Rng.int rng 2 = 0 then
          Rectangle.make ~n1:r1.Rectangle.n1 ~n2:r1.Rectangle.n2
            ~n3:r1.Rectangle.n3
            ~outer:
              (random_lang rng ~len:(r1.Rectangle.n1 + r1.Rectangle.n3)
                 ~max_card:6)
            ~middle:(random_lang rng ~len:r1.Rectangle.n2 ~max_card:6)
        else random_rectangle rng
      in
      match
        (Packed_rectangle.of_rectangle r1, Packed_rectangle.of_rectangle r2)
      with
      | Some p1, Some p2 ->
        Packed_rectangle.disjoint p1 p2
        = Lang.is_empty
            (Lang.inter (Rectangle.materialize r1) (Rectangle.materialize r2))
      | _ -> QCheck.Test.fail_report "binary rectangles must pack")

(* ---------- cover verification: packed vs set, jobs 1 vs 4 ---------- *)

let verification_equal (a : Cover.verification) (b : Cover.verification) =
  a.Cover.is_cover = b.Cover.is_cover
  && a.Cover.is_disjoint = b.Cover.is_disjoint
  && a.Cover.union_cardinal = b.Cover.union_cardinal
  && a.Cover.sum_cardinals = b.Cover.sum_cardinals

let random_cover_instance rng =
  let n = 2 + Rng.int rng 2 in
  let l = Ln.language n in
  let rects = Cover.example8_cover n in
  (* sometimes drop a rectangle (not a cover) or duplicate one *)
  let rects =
    match Rng.int rng 3 with
    | 0 -> List.tl rects
    | 1 -> List.hd rects :: rects
    | _ -> rects
  in
  (l, rects)

let prop_verify_packed_vs_set =
  QCheck.Test.make ~name:"Cover.verify: packed = set backend" ~count:25
    arb_seed (fun seed ->
      let rng = Rng.create seed in
      let l, rects = random_cover_instance rng in
      verification_equal
        (Cover.verify ~packed:true rects l)
        (Cover.verify ~packed:false rects l))

let prop_verify_jobs_invariant =
  QCheck.Test.make ~name:"Cover.verify: jobs 1 = jobs 4" ~count:15 arb_seed
    (fun seed ->
      let rng = Rng.create seed in
      let l, rects = random_cover_instance rng in
      Ucfg_exec.Exec.set_jobs 1;
      let v1 = Cover.verify rects l in
      Ucfg_exec.Exec.set_jobs 4;
      let v4 = Cover.verify rects l in
      Ucfg_exec.Exec.set_jobs 1;
      verification_equal v1 v4)

let prop_greedy_packed_vs_set =
  QCheck.Test.make ~name:"greedy_disjoint_cover: packed = set backend"
    ~count:20 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 2 in
      let l =
        if Rng.int rng 2 = 0 then Ln.language n
        else random_lang rng ~len:(2 * n) ~max_card:12
      in
      let same r1 r2 =
        r1.Rectangle.n1 = r2.Rectangle.n1
        && r1.Rectangle.n2 = r2.Rectangle.n2
        && Lang.equal r1.Rectangle.outer r2.Rectangle.outer
        && Lang.equal r1.Rectangle.middle r2.Rectangle.middle
      in
      List.equal same
        (Cover.greedy_disjoint_cover ~packed:true l ~n)
        (Cover.greedy_disjoint_cover ~packed:false l ~n))

(* ---------- GF(2) rank vs naive elimination ---------- *)

let naive_gf2_rank m =
  let rows = Matrix.rows m and cols = Matrix.cols m in
  let a = Array.init rows (fun r -> Array.init cols (Matrix.get m r)) in
  let rank = ref 0 in
  let row = ref 0 in
  for c = 0 to cols - 1 do
    let p = ref (-1) in
    for r = !row to rows - 1 do
      if !p < 0 && a.(r).(c) then p := r
    done;
    if !p >= 0 then begin
      let tmp = a.(!p) in
      a.(!p) <- a.(!row);
      a.(!row) <- tmp;
      for r = 0 to rows - 1 do
        if r <> !row && a.(r).(c) then
          for cc = 0 to cols - 1 do
            a.(r).(cc) <- a.(r).(cc) <> a.(!row).(cc)
          done
      done;
      incr row;
      incr rank
    end
  done;
  !rank

let prop_gf2_rank =
  QCheck.Test.make ~name:"Rank.gf2 = naive Gaussian elimination" ~count:60
    arb_seed (fun seed ->
      let rng = Rng.create seed in
      let rows = 1 + Rng.int rng 40 and cols = 1 + Rng.int rng 90 in
      let cells =
        Array.init rows (fun _ ->
            Array.init cols (fun _ -> Rng.int rng 3 = 0))
      in
      let m = Matrix.of_predicate ~rows ~cols (fun r c -> cells.(r).(c)) in
      Rank.gf2 m = naive_gf2_rank m)

(* ---------- matrix labels: packed codes vs word enumeration ---------- *)

let prop_matrix_labels =
  QCheck.Test.make
    ~name:"Matrix.of_language: labels and cells = word enumeration" ~count:30
    arb_seed (fun seed ->
      let rng = Rng.create seed in
      let binary = Rng.int rng 2 = 0 in
      let alpha =
        if binary then Alphabet.binary else Alphabet.make [ 'a'; 'b'; 'c' ]
      in
      let k = Alphabet.size alpha in
      let len = 2 + Rng.int rng 3 in
      let split = 1 + Rng.int rng (len - 1) in
      let full = Lang.full alpha len in
      let l =
        let sampled = Lang.filter (fun _ -> Rng.int rng 3 = 0) full in
        if Lang.is_empty sampled then
          Lang.of_list [ List.hd (Lang.elements full) ]
        else sampled
      in
      let m = Matrix.of_language alpha l ~split in
      let pow b e =
        let r = ref 1 in
        for _ = 1 to e do
          r := !r * b
        done;
        !r
      in
      Matrix.rows m = pow k split
      && Matrix.cols m = pow k (len - split)
      && List.equal String.equal
           (List.of_seq (Word.enumerate alpha split))
           (List.init (Matrix.rows m) (Matrix.row_label m))
      && List.equal String.equal
           (List.of_seq (Word.enumerate alpha (len - split)))
           (List.init (Matrix.cols m) (Matrix.col_label m))
      && begin
        let ok = ref true in
        for r = 0 to Matrix.rows m - 1 do
          for c = 0 to Matrix.cols m - 1 do
            let w = Matrix.row_label m r ^ Matrix.col_label m c in
            if Matrix.get m r c <> Lang.mem w l then ok := false
          done
        done;
        !ok
      end)

(* ---------- discrepancy: factorised vs enumerated ---------- *)

let prop_discrepancy =
  QCheck.Test.make ~name:"Discrepancy: factorised = enumerated" ~count:40
    arb_seed (fun seed ->
      let rng = Rng.create seed in
      let n = 4 * (1 + Rng.int rng 2) in
      let blocks = Ucfg_disc.Blocks.create n in
      let parts = Partition.all_balanced ~n in
      let p = List.nth parts (Rng.int rng (List.length parts)) in
      let ins = Partition.inside p and out = Partition.outside p in
      let family_member () =
        List.fold_left
          (fun acc blk ->
             let rec low b q = if b land 1 = 1 then q else low (b lsr 1) (q + 1) in
             acc lor (1 lsl (low blk 0 + Rng.int rng 4)))
          0
          (Ucfg_disc.Blocks.interval_masks blocks)
      in
      let picks = List.init 16 (fun _ -> family_member ()) in
      (* noise masks exercise the invalid classes of the factorisation *)
      let noise = List.init 6 (fun _ -> Rng.bits62 rng land ((1 lsl (2 * n)) - 1)) in
      let all = picks @ noise in
      let r =
        Set_rectangle.make p
          ~outer:(List.sort_uniq compare (List.map (fun m -> m land out) all))
          ~inner:(List.sort_uniq compare (List.map (fun m -> m land ins) all))
      in
      Ucfg_disc.Discrepancy.of_rectangle blocks r
      = Ucfg_disc.Discrepancy.of_rectangle_enumerated blocks r)

(* ---------- ambiguity profile: census vs per-word counting ---------- *)

let prop_profile_census =
  QCheck.Test.make ~name:"Ambiguity.profile: census = per-word tree counts"
    ~count:30 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let g =
        Ucfg_cfg.Random_grammar.fixed_length rng ~word_len:(2 + Rng.int rng 3)
          ~variants:(2 + Rng.int rng 3)
      in
      let prof = Ucfg_cfg.Ambiguity.profile g in
      let words = Lang.elements (Ucfg_cfg.Analysis.language_exn g) in
      let counts = List.map (Ucfg_cfg.Count_word.trees g) words in
      let ambiguous =
        List.length
          (List.filter (fun c -> Bignum.compare c Bignum.one > 0) counts)
      in
      let max_trees =
        List.fold_left
          (fun acc c -> if Bignum.compare c acc > 0 then c else acc)
          Bignum.zero counts
      in
      let histogram =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun c ->
             let k = Bignum.to_string c in
             Hashtbl.replace tbl k
               (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
          counts;
        List.sort
          (fun (a, _) (b, _) ->
             compare (String.length a, a) (String.length b, b))
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
      in
      prof.Ucfg_cfg.Ambiguity.word_total = List.length words
      && prof.Ucfg_cfg.Ambiguity.ambiguous_words = ambiguous
      && Bignum.compare prof.Ucfg_cfg.Ambiguity.max_trees max_trees = 0
      && prof.Ucfg_cfg.Ambiguity.histogram = histogram)

(* ---------- bitset kernels ---------- *)

let prop_bitset_kernels =
  QCheck.Test.make
    ~name:"Bitset: cardinal_diff / lowest_set_from / popcount kernels"
    ~count:100 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let size = 1 + Rng.int rng 200 in
      let random_set () =
        Bitset.of_list size
          (List.init (Rng.int rng size) (fun _ -> Rng.int rng size))
      in
      let a = random_set () and b = random_set () in
      Bitset.cardinal a = List.length (Bitset.elements a)
      && Bitset.cardinal_diff a b = Bitset.cardinal (Bitset.diff a b)
      && begin
        let from = Rng.int rng (size + 5) in
        let expect =
          List.find_opt (fun i -> i >= from) (Bitset.elements a)
        in
        Bitset.Mut.lowest_set_from a from = expect
        && Bitset.Mut.lowest_set a
           = (match Bitset.elements a with [] -> None | x :: _ -> Some x)
      end)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_packed_cardinal_mem;
      prop_packed_disjoint;
      prop_verify_packed_vs_set;
      prop_verify_jobs_invariant;
      prop_greedy_packed_vs_set;
      prop_gf2_rank;
      prop_matrix_labels;
      prop_discrepancy;
      prop_profile_census;
      prop_bitset_kernels;
    ]

let () = Alcotest.run "ucfg_rect_packed" [ ("kernel equivalences", qtests) ]
