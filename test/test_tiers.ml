(* The tiered language kernel: T0 (Packed, machine-integer codes, len <= 62),
   T1 (Wide, multi-limb codes, len <= 128) and T2 (Factored, hash-consed
   decision-DAG circuits) must agree wherever their ranges overlap — same
   words, same cardinals, same algebra, same least-code witnesses — and the
   factored fixpoint must be invariant under the job count and
   interruptible by the ambient guard.  These pins are what lets Lang move a computation
   between tiers without changing any observable. *)

open Ucfg_lang
open Ucfg_cfg
open Ucfg_exec
module Bignum = Ucfg_util.Bignum

let with_global_jobs jobs f =
  let saved = Exec.jobs () in
  Exec.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.set_jobs saved) f

(* --- generators -------------------------------------------------------- *)

let gen_word len =
  QCheck.Gen.map
    (fun l ->
       String.init len (fun i -> if List.nth l i then 'b' else 'a'))
    QCheck.Gen.(list_repeat len bool)

(* a sorted-unique list of random binary words of one length in [lo..hi] *)
let gen_words lo hi =
  QCheck.Gen.(
    int_range lo hi >>= fun len ->
    list_size (int_bound 30) (gen_word len) >>= fun ws ->
    return (len, List.sort_uniq compare ws))

let print_words (len, ws) =
  Printf.sprintf "len=%d [%s]" len (String.concat "," ws)

let arb_overlap_t0_t1 = QCheck.make ~print:print_words (gen_words 56 62)
let arb_overlap_t1_t2 = QCheck.make ~print:print_words (gen_words 120 128)

let arb_pair lo hi =
  QCheck.make
    ~print:(fun (a, b) -> print_words a ^ " / " ^ print_words b)
    QCheck.Gen.(
      gen_words lo hi >>= fun (len, a) ->
      list_size (int_bound 30) (gen_word len) >>= fun b ->
      return ((len, a), (len, List.sort_uniq compare b)))

(* --- T0 vs T1 on the 56..62 overlap ------------------------------------ *)

let packed_of len ws =
  Packed.of_codes ~len (Array.of_list (List.map Packed.code_of_word ws))

let wide_of len ws = Wide.of_word_list len ws

let prop_t0_t1_construction =
  QCheck.Test.make ~name:"T0/T1: words, cardinal, mem, witnesses agree"
    ~count:200 arb_overlap_t0_t1 (fun (len, ws) ->
      let p = packed_of len ws and w = wide_of len ws in
      Packed.cardinal p = Wide.cardinal w
      && List.of_seq (Packed.words p) = List.of_seq (Wide.words w)
      && List.for_all (fun x -> Packed.mem p x && Wide.mem w x) ws
      && Option.map (Packed.word_of_code ~len) (Packed.first_code p)
         = Wide.min_word w
      && Option.map (Packed.word_of_code ~len) (Packed.first_absent_code p)
         = Wide.first_absent_word w)

let prop_t0_t1_algebra =
  QCheck.Test.make ~name:"T0/T1: boolean algebra and predicates agree"
    ~count:200 (arb_pair 56 62) (fun ((len, a), (_, b)) ->
      let pa = packed_of len a and pb = packed_of len b in
      let wa = wide_of len a and wb = wide_of len b in
      let same op_p op_w =
        List.of_seq (Packed.words (op_p pa pb))
        = List.of_seq (Wide.words (op_w wa wb))
      in
      same Packed.union Wide.union
      && same Packed.inter Wide.inter
      && same Packed.diff Wide.diff
      && Packed.equal pa pb = Wide.equal wa wb
      && Packed.subset pa pb = Wide.subset wa wb
      && Packed.disjoint pa pb = Wide.disjoint wa wb)

let prop_t0_t1_concat =
  QCheck.Test.make ~name:"T0/T1: concat agrees below the 62 wall" ~count:200
    (arb_pair 28 31) (fun ((len, a), (_, b)) ->
      let p = Packed.concat (packed_of len a) (packed_of len b) in
      let w = Wide.concat (wide_of len a) (wide_of len b) in
      List.of_seq (Packed.words p) = List.of_seq (Wide.words w))

(* --- T1 vs T2 on the 120..128 overlap ----------------------------------- *)

let factored_of len ws = Factored.of_word_list len ws

let prop_t1_t2_construction =
  QCheck.Test.make ~name:"T1/T2: words, cardinal, mem, witnesses agree"
    ~count:200 arb_overlap_t1_t2 (fun (len, ws) ->
      let w = wide_of len ws and f = factored_of len ws in
      Bignum.equal (Bignum.of_int (Wide.cardinal w)) (Factored.cardinal f)
      && List.of_seq (Wide.words w) = List.of_seq (Factored.words f)
      && List.for_all (fun x -> Wide.mem w x && Factored.mem f x) ws
      && Wide.min_word w = Factored.min_word f
      && Wide.first_absent_word w = Factored.min_absent_word f)

let prop_t1_t2_algebra =
  QCheck.Test.make ~name:"T1/T2: boolean algebra and predicates agree"
    ~count:200 (arb_pair 120 128) (fun ((len, a), (_, b)) ->
      let wa = wide_of len a and wb = wide_of len b in
      let fa = factored_of len a and fb = factored_of len b in
      let same op_w op_f =
        List.of_seq (Wide.words (op_w wa wb))
        = List.of_seq (Factored.words (op_f ?guard:None fa fb))
      in
      same Wide.union Factored.union
      && same Wide.inter Factored.inter
      && same Wide.diff Factored.diff
      && Wide.equal wa wb = Factored.equal fa fb
      && Wide.subset wa wb = Factored.subset fa fb
      && Wide.disjoint wa wb = Factored.disjoint fa fb)

let prop_t1_t2_concat =
  QCheck.Test.make ~name:"T1/T2: concat agrees up to the 128 wall" ~count:200
    (arb_pair 60 64) (fun ((len, a), (_, b)) ->
      let w = Wide.concat (wide_of len a) (wide_of len b) in
      let f = Factored.concat (factored_of len a) (factored_of len b) in
      List.of_seq (Wide.words w) = List.of_seq (Factored.words f))

(* complement within Σ^len is a T2-only operation above 62; its exact
   Bignum cardinal and its least-word witnesses must match what the T1 gap
   scan sees on the uncomplemented side *)
let prop_t1_t2_complement =
  QCheck.Test.make ~name:"T1/T2: complement cardinal and witnesses" ~count:100
    arb_overlap_t1_t2 (fun (len, ws) ->
      let w = wide_of len ws in
      let c = Factored.complement (Factored.of_wide w) in
      Bignum.equal (Factored.cardinal c)
        (Bignum.sub (Bignum.two_pow len)
           (Bignum.of_int (Wide.cardinal w)))
      && Factored.min_absent_word c = Wide.min_word w
      && Factored.min_word c = Wide.first_absent_word w
      && List.for_all (fun x -> not (Factored.mem c x)) ws)

(* Lang-level dispatch: the same word set packed through Lang lands on the
   tier its length demands, and cross-tier Lang.equal still answers *)
let prop_lang_dispatch =
  QCheck.Test.make ~name:"Lang: pack dispatches by length, equal crosses tiers"
    ~count:100 (QCheck.make ~print:print_words (gen_words 1 128))
    (fun (len, ws) ->
      let l = Lang.pack (Lang.of_list ws) in
      let expected_tier =
        if ws = [] then `Set
        else if len <= Packed.max_length then `T0
        else `T1
      in
      Lang.tier l = expected_tier
      && Lang.equal l (Lang.factor l)
      && Lang.elements l = ws)

(* --- the factored fixpoint ---------------------------------------------- *)

(* Ln.language is enumerated (T0) up to n = 10 and symbolic (T2) beyond;
   both constructions must denote the same language on the overlap *)
let test_ln_factored_agrees () =
  for n = 1 to 8 do
    let enum = Ln.language n in
    let fact = Ln.language_factored n in
    Alcotest.(check bool)
      (Printf.sprintf "L_%d enumerated = factored" n)
      true (Lang.equal enum fact);
    Alcotest.(check string)
      (Printf.sprintf "L_%d cardinal" n)
      (Bignum.to_string (Ln.cardinal n))
      (Bignum.to_string (Lang.cardinal_big fact))
  done

(* the whole point of the tier: the fixpoint over the Θ(log n) grammar at
   n = 16 — a language of 4^16 − 3^16 ≈ 4.25e9 words — terminates, exactly *)
let test_factored_fixpoint_n16 () =
  let g = Constructions.log_cfg 16 in
  let l = Analysis.language_exn ~factored:true g in
  Alcotest.(check bool) "tier is T2" true (Lang.tier l = `T2);
  Alcotest.(check bool) "equals the symbolic L_16" true
    (Lang.equal l (Ln.language_factored 16));
  Alcotest.(check string) "exact cardinal 4^16 - 3^16"
    (Bignum.to_string (Ln.cardinal 16))
    (Bignum.to_string (Lang.cardinal_big l))

let test_factored_fixpoint_jobs_invariant () =
  let run jobs =
    with_global_jobs jobs (fun () ->
        Analysis.language_exn ~factored:true (Constructions.log_cfg 12))
  in
  let l1 = run 1 and l4 = run 4 in
  Alcotest.(check bool) "jobs 1 = jobs 4 (hash-consed identity)" true
    (Lang.equal l1 l4);
  Alcotest.(check bool) "witnesses agree" true
    (Lang.min_word l1 = Lang.min_word l4
     && Lang.first_absent_word l1 = Lang.first_absent_word l4)

(* a small tick budget must interrupt the memoised model count mid-walk —
   every long T2 loop polls the guard *)
let test_guard_trips_in_cardinal () =
  let l = Ln.language_factored 14 in
  let f = Option.get (Lang.to_factored l) in
  match Factored.cardinal ~guard:(Guard.create ~budget:5 ()) f with
  | _ -> Alcotest.fail "expected the budget guard to interrupt the cardinal"
  | exception Guard.Interrupt Guard.Budget -> ()

(* --- the d-rep export ---------------------------------------------------- *)

let prop_drep_export =
  QCheck.Test.make ~name:"drep_of_factored: denotation, determinism, count"
    ~count:100 (QCheck.make ~print:print_words (gen_words 1 10))
    (fun (len, ws) ->
      let f = Factored.of_word_list len ws in
      let d = Ucfg_fr.Iso.drep_of_factored f in
      Lang.elements (Ucfg_fr.Drep.denotation d) = ws
      && Bignum.equal (Ucfg_fr.Drep.count_tuples d) (Factored.cardinal f)
      && Ucfg_fr.Drep.is_deterministic d)

(* --- registration -------------------------------------------------------- *)

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ucfg_tiers"
    [
      ( "t0-t1",
        qtests [ prop_t0_t1_construction; prop_t0_t1_algebra; prop_t0_t1_concat ]
      );
      ( "t1-t2",
        qtests
          [
            prop_t1_t2_construction; prop_t1_t2_algebra; prop_t1_t2_concat;
            prop_t1_t2_complement; prop_lang_dispatch;
          ] );
      ( "fixpoint",
        [
          Alcotest.test_case "Ln enumerated = factored" `Quick
            test_ln_factored_agrees;
          Alcotest.test_case "factored fixpoint reaches n=16" `Quick
            test_factored_fixpoint_n16;
          Alcotest.test_case "factored fixpoint invariant under jobs" `Quick
            test_factored_fixpoint_jobs_invariant;
          Alcotest.test_case "guard trips inside a T2 cardinal" `Quick
            test_guard_trips_in_cardinal;
        ] );
      ("drep", qtests [ prop_drep_export ]);
    ]
