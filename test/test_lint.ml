(* Tests for the static-analysis subsystem: the diagnostic type and its
   renderers, every grammar and NFA lint code on handcrafted instances, the
   JSON encoding, and qcheck properties tying the sound verdicts to the
   exhaustive ambiguity decision. *)

open Ucfg_word
open Ucfg_cfg
open Ucfg_lint
module G = Grammar
module D = Diag
module SL = Semantic_lint
module Lang = Ucfg_lang.Lang
module Packed = Ucfg_lang.Packed
module Bignum = Ucfg_util.Bignum
module Exec = Ucfg_exec.Exec
module Guard = Ucfg_exec.Guard

(* flip the process-wide pool, restoring the previous size afterwards *)
let with_global_jobs jobs f =
  let saved = Exec.jobs () in
  Exec.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.set_jobs saved) f

let codes diags = List.map (fun (d : D.t) -> d.code) diags
let has_code c diags = List.mem c (codes diags)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let diag_with c diags =
  match List.find_opt (fun (d : D.t) -> d.code = c) diags with
  | Some d -> d
  | None -> Alcotest.failf "expected a %s diagnostic" c

(* S -> AB | BA; A -> a; B -> b — unambiguous, certified *)
let tiny () =
  G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A"; "B" |]
    ~rules:
      [
        { G.lhs = 0; rhs = [ G.N 1; G.N 2 ] };
        { G.lhs = 0; rhs = [ G.N 2; G.N 1 ] };
        { G.lhs = 1; rhs = [ G.T 'a' ] };
        { G.lhs = 2; rhs = [ G.T 'b' ] };
      ]
    ~start:0

(* S -> AA; A -> a | aa — "aaa" has two trees *)
let amb () =
  G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A" |]
    ~rules:
      [
        { G.lhs = 0; rhs = [ G.N 1; G.N 1 ] };
        { G.lhs = 1; rhs = [ G.T 'a' ] };
        { G.lhs = 1; rhs = [ G.T 'a'; G.T 'a' ] };
      ]
    ~start:0

(* --- grammar codes, one by one ------------------------------------------ *)

let test_useless_nonterminals () =
  (* A unproductive (no rules); B productive but unreachable *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A"; "B" |]
      ~rules:
        [ { G.lhs = 0; rhs = [ G.T 'a' ] }; { G.lhs = 2; rhs = [ G.T 'b' ] } ]
      ~start:0
  in
  let ds = Grammar_lint.run g in
  Alcotest.(check bool) "G001 fires" true (has_code "G001" ds);
  Alcotest.(check bool) "G002 fires" true (has_code "G002" ds);
  let d = diag_with "G001" ds in
  Alcotest.(check bool) "G001 locates A" true (d.loc = D.Nonterminal "A")

let test_empty_language () =
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
      ~rules:[ { G.lhs = 0; rhs = [ G.T 'a'; G.N 0 ] } ]
      ~start:0
  in
  let ds = Grammar_lint.run g in
  Alcotest.(check bool) "G003 fires" true (has_code "G003" ds);
  (* the start symbol is unproductive, so no definite-ambiguity error *)
  Alcotest.(check bool) "no errors" false (D.has_errors ds)

let test_self_reference () =
  (* S -> S is usable and useful over the finite language {a} *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
      ~rules:[ { G.lhs = 0; rhs = [ G.N 0 ] }; { G.lhs = 0; rhs = [ G.T 'a' ] } ]
      ~start:0
  in
  let ds = Grammar_lint.run g in
  let d = diag_with "G004" ds in
  Alcotest.(check bool) "G004 is an error" true (d.severity = D.Error);
  Alcotest.(check bool) "G005 also fires (unit self-loop)" true
    (has_code "G005" ds);
  Alcotest.(check bool) "verdict ambiguous" true
    (Grammar_lint.verdict ds = `Ambiguous)

let test_unit_cycle () =
  (* A <-> B unit cycle over {a} *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A"; "B" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.N 1 ] };
          { G.lhs = 1; rhs = [ G.N 2 ] };
          { G.lhs = 2; rhs = [ G.N 1 ] };
          { G.lhs = 1; rhs = [ G.T 'a' ] };
        ]
      ~start:0
  in
  let ds = Grammar_lint.run g in
  let d = diag_with "G005" ds in
  Alcotest.(check bool) "G005 is an error" true (d.severity = D.Error);
  Alcotest.(check bool) "verdict ambiguous" true
    (Grammar_lint.verdict ds = `Ambiguous)

let test_epsilon_cycle () =
  (* A -> B N, B -> A N, N -> ε: A =>+ A through ε-context; language {a} *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "A"; "B"; "N" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.N 1; G.N 2 ] };
          { G.lhs = 1; rhs = [ G.N 0; G.N 2 ] };
          { G.lhs = 2; rhs = [] };
          { G.lhs = 0; rhs = [ G.T 'a' ] };
        ]
      ~start:0
  in
  let ds = Grammar_lint.run g in
  let d = diag_with "G006" ds in
  Alcotest.(check bool) "G006 is an error" true (d.severity = D.Error);
  Alcotest.(check bool) "verdict ambiguous" true
    (Grammar_lint.verdict ds = `Ambiguous)

let test_infinite_language () =
  (* S -> aS | a: dependency cycle, infinite language — info only *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.T 'a'; G.N 0 ] };
          { G.lhs = 0; rhs = [ G.T 'a' ] };
        ]
      ~start:0
  in
  let ds = Grammar_lint.run g in
  Alcotest.(check bool) "G007 fires" true (has_code "G007" ds);
  Alcotest.(check bool) "G008 fires" true (has_code "G008" ds);
  Alcotest.(check bool) "no errors (S -> aS | a is unambiguous)" false
    (D.has_errors ds);
  Alcotest.(check bool) "verdict unknown" true
    (Grammar_lint.verdict ds = `Unknown)

let test_unit_duplication () =
  (* S -> A and S -> aa duplicate A -> aa *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.N 1 ] };
          { G.lhs = 0; rhs = [ G.T 'a'; G.T 'a' ] };
          { G.lhs = 1; rhs = [ G.T 'a'; G.T 'a' ] };
        ]
      ~start:0
  in
  let ds = Grammar_lint.run g in
  let d = diag_with "G009" ds in
  Alcotest.(check bool) "G009 is an error" true (d.severity = D.Error);
  Alcotest.(check bool) "G013 confirms" true (has_code "G013" ds);
  Alcotest.(check bool) "verdict ambiguous" true
    (Grammar_lint.verdict ds = `Ambiguous);
  (* cross-check the definite verdict against the exhaustive decision *)
  Alcotest.(check bool) "exhaustive check agrees" false
    (Ambiguity.is_unambiguous ~fast:false g)

let test_cnf_and_start_on_rhs () =
  let ds_tiny = Grammar_lint.run (tiny ()) in
  Alcotest.(check bool) "tiny is CNF" false (has_code "G010" ds_tiny);
  let ds_amb = Grammar_lint.run (amb ()) in
  Alcotest.(check bool) "amb is not CNF" true (has_code "G010" ds_amb);
  (* B -> S b puts the start symbol on a right-hand side *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "B" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.T 'a' ] };
          { G.lhs = 1; rhs = [ G.N 0; G.T 'b' ] };
        ]
      ~start:0
  in
  let ds = Grammar_lint.run g in
  Alcotest.(check bool) "G011 fires" true (has_code "G011" ds);
  Alcotest.(check bool) "G002 flags B" true (has_code "G002" ds)

let test_heuristics_and_probe () =
  let ds = Grammar_lint.run (amb ()) in
  (* A's two rules share FIRST = {a}; S -> A A has a movable boundary *)
  Alcotest.(check bool) "G012 fires" true (has_code "G012" ds);
  Alcotest.(check bool) "G014 fires" true (has_code "G014" ds);
  let d = diag_with "G013" ds in
  Alcotest.(check bool) "G013 is an error" true (d.severity = D.Error);
  Alcotest.(check bool) "G013 names the witness" true
    (contains_substring d.message "aaa");
  Alcotest.(check bool) "verdict ambiguous" true
    (Grammar_lint.verdict ds = `Ambiguous)

let test_certificate () =
  let ds = Grammar_lint.run (tiny ()) in
  Alcotest.(check bool) "G015 fires" true (has_code "G015" ds);
  Alcotest.(check bool) "no errors" false (D.has_errors ds);
  Alcotest.(check bool) "verdict unambiguous" true
    (Grammar_lint.verdict ds = `Unambiguous)

let test_registry_complete () =
  let expected =
    [ "G001"; "G002"; "G003"; "G004"; "G005"; "G006"; "G007"; "G008"; "G009";
      "G010"; "G011"; "G012"; "G013"; "G014"; "G015" ]
  in
  Alcotest.(check (list string)) "grammar registry codes" expected
    (List.map (fun (c : D.check) -> c.code) Grammar_lint.checks);
  Alcotest.(check (list string)) "nfa registry codes"
    [ "N001"; "N002"; "N003"; "N004"; "N005"; "N006"; "N007" ]
    (List.map (fun (c : D.check) -> c.code) Nfa_lint.checks);
  Alcotest.(check (list string)) "semantic registry codes"
    [ "G016"; "G017"; "G018"; "G019"; "G020" ]
    (List.map (fun (c : D.check) -> c.code) SL.checks)

(* --- the semantic tier ---------------------------------------------------- *)

(* Σ^2 via S -> AA, A -> a | b — universal, certified unambiguous *)
let full2 () =
  G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A" |]
    ~rules:
      [
        { G.lhs = 0; rhs = [ G.N 1; G.N 1 ] };
        { G.lhs = 1; rhs = [ G.T 'a' ] };
        { G.lhs = 1; rhs = [ G.T 'b' ] };
      ]
    ~start:0

(* {ab}: a strict subset of tiny's {ab, ba} *)
let just_ab () =
  G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
    ~rules:[ { G.lhs = 0; rhs = [ G.T 'a'; G.T 'b' ] } ]
    ~start:0

(* {aa, bb}: disjoint from tiny's {ab, ba} *)
let pair_aa_bb () =
  G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
    ~rules:
      [
        { G.lhs = 0; rhs = [ G.T 'a'; G.T 'a' ] };
        { G.lhs = 0; rhs = [ G.T 'b'; G.T 'b' ] };
      ]
    ~start:0

(* the start symbol is unproductive: L = ∅ *)
let empty_g () =
  G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
    ~rules:[ { G.lhs = 0; rhs = [ G.T 'a'; G.N 0 ] } ]
    ~start:0

let big = Alcotest.testable Bignum.pp Bignum.equal
let card_opt = Alcotest.(option big)

let check_status what expected (r : SL.report) =
  let pp_status ppf (s : SL.status) =
    match s with
    | SL.Holds -> Format.fprintf ppf "Holds"
    | SL.Fails w ->
      Format.fprintf ppf "Fails %S (in_first %b, in_second %b)" w.SL.word
        w.SL.in_first w.SL.in_second
    | SL.Interrupted reason ->
      Format.fprintf ppf "Interrupted %s" (Guard.reason_code reason)
  in
  Alcotest.check (Alcotest.testable pp_status ( = )) what expected r.SL.status

let test_semantic_universal_unit () =
  let r = SL.universal (full2 ()) in
  check_status "Σ^2 grammar is universal" SL.Holds r;
  Alcotest.(check bool) "decided by counting" true (r.SL.backend = SL.Counting);
  Alcotest.check card_opt "|L| = 4" (Some (Bignum.of_int 4)) r.SL.cardinal;
  (* the cross-check forces the packed route too and must agree *)
  let rx = SL.universal ~cross_check:true (full2 ()) in
  check_status "cross-checked verdict unchanged" SL.Holds rx;
  Alcotest.(check bool) "backends agree" true (rx.SL.cross_check = None);
  let r2 = SL.universal (tiny ()) in
  check_status "{ab, ba} misses \"aa\""
    (SL.Fails { SL.word = "aa"; in_first = false; in_second = true })
    r2;
  Alcotest.(check bool) "counting engaged on the certified grammar" true
    (r2.SL.backend = SL.Counting);
  Alcotest.check card_opt "|L| = 2" (Some (Bignum.of_int 2)) r2.SL.cardinal;
  let r3 = SL.universal (empty_g ()) in
  Alcotest.(check bool) "empty language is vacuously non-universal" true
    (r3.SL.vacuous && (match r3.SL.status with SL.Fails _ -> true | _ -> false));
  Alcotest.check card_opt "|L| = 0" (Some Bignum.zero) r3.SL.cardinal

let test_semantic_relational_unit () =
  let r = SL.includes (just_ab ()) (tiny ()) in
  check_status "{ab} ⊆ {ab, ba}" SL.Holds r;
  Alcotest.(check bool) "certificate routes to counting" true
    (r.SL.backend = SL.Counting);
  Alcotest.check card_opt "|L1| = 1" (Some (Bignum.of_int 1)) r.SL.cardinal;
  let r2 = SL.includes (tiny ()) (just_ab ()) in
  check_status "reverse fails on the least extra word"
    (SL.Fails { SL.word = "ba"; in_first = true; in_second = false })
    r2;
  let r3 = SL.disjoint (tiny ()) (pair_aa_bb ()) in
  check_status "{ab, ba} ∥ {aa, bb}" SL.Holds r3;
  let r4 = SL.disjoint (tiny ()) (full2 ()) in
  check_status "overlap witnessed by the least shared word"
    (SL.Fails { SL.word = "ab"; in_first = true; in_second = true })
    r4;
  let r5 = SL.equiv (tiny ()) (tiny ()) in
  check_status "L = L" SL.Holds r5;
  let r6 = SL.equiv (tiny ()) (just_ab ()) in
  check_status "G1-side witness"
    (SL.Fails { SL.word = "ba"; in_first = true; in_second = false })
    r6;
  let r7 = SL.equiv (just_ab ()) (tiny ()) in
  check_status "G2-side witness"
    (SL.Fails { SL.word = "ba"; in_first = false; in_second = true })
    r7;
  let r8 = SL.includes (empty_g ()) (tiny ()) in
  check_status "∅ ⊆ L vacuously" SL.Holds r8;
  Alcotest.(check bool) "flagged vacuous" true r8.SL.vacuous;
  Alcotest.(check bool) "G019 rendered" true
    (has_code "G019" (SL.to_diags r8))

let test_semantic_guard_trip () =
  (* the packed sweep on log n=6 needs more than 3 guard ticks: the budget
     trips, the verdict degrades to a partial one, and the kind must not
     depend on the job count *)
  let kind jobs =
    with_global_jobs jobs (fun () ->
      let guard = Guard.create ~budget:3 () in
      let r = SL.universal ~guard (Constructions.log_cfg 6) in
      match r.SL.status with
      | SL.Interrupted reason -> Guard.reason_code reason
      | SL.Holds -> "holds"
      | SL.Fails _ -> "fails")
  in
  Alcotest.(check string) "budget trips at jobs 1" "budget" (kind 1);
  Alcotest.(check string) "same kind at jobs 4" "budget" (kind 4);
  let guard = Guard.create ~budget:3 () in
  let r = SL.universal ~guard (Constructions.log_cfg 6) in
  let ds = SL.to_diags r in
  let d = diag_with "R002" ds in
  Alcotest.(check bool) "partial verdict is a warning" true
    (d.severity = D.Warning);
  Alcotest.(check bool) "says partial" true
    (contains_substring d.message "partial verdict");
  (* an immediate deadline degrades the same way, as R001 *)
  let timed jobs =
    with_global_jobs jobs (fun () ->
      let guard = Guard.create ~timeout:1e-9 () in
      match (SL.equiv ~guard (Constructions.log_cfg 5) (tiny ())).SL.status with
      | SL.Interrupted reason -> Guard.reason_code reason
      | _ -> "decided")
  in
  Alcotest.(check string) "timeout trips at jobs 1" "timeout" (timed 1);
  Alcotest.(check string) "same kind at jobs 4" "timeout" (timed 4)

let test_certificate_verdict_typed () =
  (match Grammar_lint.certificate_verdict (Grammar_lint.run (tiny ())) with
   | Grammar_lint.Certified_unambiguous -> ()
   | _ -> Alcotest.fail "tiny should be certified unambiguous");
  (match Grammar_lint.certificate_verdict (Grammar_lint.run (amb ())) with
   | Grammar_lint.Certified_ambiguous proof ->
     Alcotest.(check bool) "the proof is an error diagnostic" true
       (proof.D.severity = D.Error)
   | _ -> Alcotest.fail "amb should carry an ambiguity proof");
  let inf =
    G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.T 'a'; G.N 0 ] };
          { G.lhs = 0; rhs = [ G.T 'a' ] };
        ]
      ~start:0
  in
  match Grammar_lint.certificate_verdict (Grammar_lint.run inf) with
  | Grammar_lint.Certificate_unknown -> ()
  | _ -> Alcotest.fail "an infinite language is inconclusive"

let test_semantic_lint_tier () =
  let ds = Grammar_lint.run ~semantic:true (tiny ()) in
  let d = diag_with "G016" ds in
  Alcotest.(check bool) "non-universality is an Info fact" true
    (d.severity = D.Info);
  Alcotest.(check bool) "carries the witness" true
    (contains_substring d.message "aa");
  Alcotest.(check bool) "syntactic tier still runs" true (has_code "G015" ds);
  Alcotest.(check bool) "no errors" false (D.has_errors ds);
  Alcotest.(check bool) "the default run is unchanged" false
    (has_code "G016" (Grammar_lint.run (tiny ())));
  (* the deep tier stays silent when the language cannot be materialised *)
  let inf =
    G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.T 'a'; G.N 0 ] };
          { G.lhs = 0; rhs = [ G.T 'a' ] };
        ]
      ~start:0
  in
  let ds_inf = Grammar_lint.run ~semantic:true inf in
  Alcotest.(check bool) "no semantic codes on an infinite language" false
    (List.exists (fun c -> has_code c ds_inf)
       [ "G016"; "G017"; "G018"; "G019"; "G020" ])

let test_packed_first_codes () =
  (* {ab, ba} at length 2: codes 1 and 2, so the first gap is 0 ("aa") *)
  let p = Packed.of_codes ~len:2 [| 1; 2 |] in
  Alcotest.(check (option int)) "first_code" (Some 1) (Packed.first_code p);
  Alcotest.(check (option string)) "min_word" (Some "ab") (Packed.min_word p);
  Alcotest.(check (option int)) "first gap" (Some 0)
    (Packed.first_absent_code p);
  Alcotest.(check (option int)) "empty has no code" None
    (Packed.first_code (Packed.empty 3));
  Alcotest.(check (option int)) "empty's gap is 0" (Some 0)
    (Packed.first_absent_code (Packed.empty 3));
  Alcotest.(check (option int)) "full has no gap" None
    (Packed.first_absent_code (Packed.full 2));
  Alcotest.(check (option int)) "Σ^0 = {ε} has no gap" None
    (Packed.first_absent_code (Packed.full 0));
  (* the sparse construction path (len > 16 stores a code array) *)
  let q = Packed.of_sorted_codes ~len:20 [| 0; 1; 2; 5 |] in
  Alcotest.(check (option int)) "sparse first_code" (Some 0)
    (Packed.first_code q);
  Alcotest.(check (option int)) "sparse gap after the prefix" (Some 3)
    (Packed.first_absent_code q);
  let r = Packed.of_sorted_codes ~len:20 (Array.init 4 Fun.id) in
  Alcotest.(check (option int)) "gapless prefix: gap = cardinal" (Some 4)
    (Packed.first_absent_code r)

(* --- the fast path in Ambiguity.check ----------------------------------- *)

let test_fast_path_certificate () =
  let v = Ambiguity.check (tiny ()) in
  Alcotest.(check bool) "unambiguous" true v.Ambiguity.unambiguous;
  Alcotest.(check bool) "via certificate" true
    (v.Ambiguity.via = Ambiguity.Certificate);
  Alcotest.(check (option int)) "word count from the poly DP" (Some 2)
    v.Ambiguity.word_count

let test_fast_path_witness () =
  let v = Ambiguity.check (amb ()) in
  Alcotest.(check bool) "ambiguous" false v.Ambiguity.unambiguous;
  Alcotest.(check bool) "via static witness" true
    (match v.Ambiguity.via with
     | Ambiguity.Static_witness _ -> true
     | _ -> false);
  Alcotest.(check (option string)) "witness word" (Some "aaa")
    (Ambiguity.ambiguous_witness (amb ()));
  let slow = Ambiguity.check ~fast:false (amb ()) in
  Alcotest.(check bool) "exhaustive path used" true
    (slow.Ambiguity.via = Ambiguity.Counting);
  Alcotest.(check bool) "same answer" false slow.Ambiguity.unambiguous

let test_fast_path_contract () =
  (* infinite language must still raise, fast path or not *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.T 'a'; G.N 0 ] };
          { G.lhs = 0; rhs = [ G.T 'a' ] };
        ]
      ~start:0
  in
  Alcotest.(check bool) "infinite raises" true
    (match Ambiguity.check g with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* --- NFA codes ----------------------------------------------------------- *)

let mk_nfa ?(epsilons = []) ~states ~initials ~finals transitions =
  Ucfg_automata.Nfa.make ~alphabet:Alphabet.binary ~states ~initials ~finals
    ~transitions ~epsilons ()

let test_nfa_useless_states () =
  (* state 2 unreachable; state 3 reachable but dead *)
  let a =
    mk_nfa ~states:4 ~initials:[ 0 ] ~finals:[ 1 ]
      [ (0, 'a', 1); (2, 'b', 1); (0, 'b', 3) ]
  in
  let ds = Nfa_lint.run a in
  Alcotest.(check bool) "N001 fires" true (has_code "N001" ds);
  Alcotest.(check bool) "N002 fires" true (has_code "N002" ds);
  Alcotest.(check bool) "N007 certifies" true (has_code "N007" ds)

let test_nfa_epsilon_skips_product () =
  let a =
    mk_nfa ~states:2 ~initials:[ 0 ] ~finals:[ 1 ] ~epsilons:[ (0, 1) ]
      [ (0, 'a', 1) ]
  in
  let ds = Nfa_lint.run a in
  Alcotest.(check bool) "N003 fires" true (has_code "N003" ds);
  Alcotest.(check bool) "N006 skipped" false (has_code "N006" ds);
  Alcotest.(check bool) "N007 skipped" false (has_code "N007" ds)

let test_nfa_fanout_and_empty () =
  let a =
    mk_nfa ~states:3 ~initials:[ 0 ] ~finals:[ 1; 2 ]
      [ (0, 'a', 1); (0, 'a', 2); (1, 'b', 1) ]
  in
  Alcotest.(check bool) "N004 fires" true (has_code "N004" (Nfa_lint.run a));
  let dfa = mk_nfa ~states:2 ~initials:[ 0 ] ~finals:[ 1 ] [ (0, 'a', 1) ] in
  Alcotest.(check bool) "no N004 on a DFA" false
    (has_code "N004" (Nfa_lint.run dfa));
  let empty = mk_nfa ~states:1 ~initials:[ 0 ] ~finals:[] [] in
  let ds = Nfa_lint.run empty in
  Alcotest.(check bool) "N005 fires" true (has_code "N005" ds);
  Alcotest.(check bool) "no product claim" false
    (has_code "N006" ds || has_code "N007" ds)

let test_nfa_ambiguous () =
  (* two accepting runs of "a": 0-a->1 and 0-a->2 *)
  let a =
    mk_nfa ~states:3 ~initials:[ 0 ] ~finals:[ 1; 2 ]
      [ (0, 'a', 1); (0, 'a', 2) ]
  in
  let ds = Nfa_lint.run a in
  let d = diag_with "N006" ds in
  Alcotest.(check bool) "N006 is an error" true (d.severity = D.Error);
  Alcotest.(check bool) "names the pair" true
    (contains_substring d.message "states 1 and 2");
  Alcotest.(check bool) "agrees with Unambiguous" false
    (Ucfg_automata.Unambiguous.is_unambiguous a)

let test_nfa_ln_build_ambiguous () =
  let ds = Nfa_lint.run (Ucfg_automata.Ln_nfa.build 4) in
  Alcotest.(check bool) "the Theorem 1(2) NFA is ambiguous" true
    (has_code "N006" ds)

(* --- JSON ----------------------------------------------------------------- *)

(* a minimal JSON reader, enough to validate the linter's encoder *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let pos = ref 0 in
    let len = String.length s in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let next () =
      if !pos >= len then raise (Bad "eof");
      let c = s.[!pos] in
      incr pos;
      c
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      if next () <> c then raise (Bad (Printf.sprintf "expected %c" c))
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (match next () with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'u' ->
             let hex = String.init 4 (fun _ -> next ()) in
             Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
           | c -> raise (Bad (Printf.sprintf "bad escape %c" c)));
          go ()
        | c ->
          Buffer.add_char buf c;
          go ()
      in
      go ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object char %c" c))
          in
          members []
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elements (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array char %c" c))
          in
          elements []
        end
      | Some 'n' ->
        pos := !pos + 4;
        Null
      | Some 't' ->
        pos := !pos + 4;
        Bool true
      | Some 'f' ->
        pos := !pos + 5;
        Bool false
      | Some c when c = '-' || ('0' <= c && c <= '9') ->
        let start = !pos in
        let is_num c =
          c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
          || ('0' <= c && c <= '9')
        in
        while (match peek () with Some c -> is_num c | None -> false) do
          incr pos
        done;
        Num (float_of_string (String.sub s start (!pos - start)))
      | _ -> raise (Bad "unexpected")
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then raise (Bad "trailing garbage");
    v
end

let test_json_wellformed () =
  let check_diags diags =
    match Json.parse (D.list_to_json diags) with
    | Json.Arr items ->
      Alcotest.(check int) "one object per diagnostic" (List.length diags)
        (List.length items);
      List.iter
        (function
          | Json.Obj fields ->
            List.iter
              (fun k ->
                 Alcotest.(check bool) (k ^ " present") true
                   (List.mem_assoc k fields))
              [ "code"; "severity"; "location"; "message"; "hint" ];
            (match List.assoc "location" fields with
             | Json.Obj loc ->
               Alcotest.(check bool) "location kind" true
                 (List.mem_assoc "kind" loc)
             | _ -> Alcotest.fail "location is not an object")
          | _ -> Alcotest.fail "array element is not an object")
        items
    | _ -> Alcotest.fail "not a JSON array"
  in
  check_diags (Grammar_lint.run (amb ()));
  check_diags (Grammar_lint.run (Constructions.log_cfg 4));
  check_diags (Nfa_lint.run (Ucfg_automata.Ln_nfa.build 3));
  (* escaping: a message with quotes and newlines survives *)
  let tricky =
    [ D.make ~code:"G999" ~severity:D.Info ~loc:D.Whole "say \"hi\"\n\ttab" ]
  in
  match Json.parse (D.list_to_json tricky) with
  | Json.Arr [ Json.Obj fields ] ->
    Alcotest.(check bool) "message round-trips" true
      (List.assoc "message" fields = Json.Str "say \"hi\"\n\ttab")
  | _ -> Alcotest.fail "tricky encoding broke"

let test_text_report () =
  let report =
    Format.asprintf "%a" D.pp_report (Grammar_lint.run (amb ()))
  in
  Alcotest.(check bool) "mentions G013" true
    (contains_substring report "G013");
  Alcotest.(check bool) "has a summary line" true
    (contains_substring report "error")

(* --- properties ----------------------------------------------------------- *)

let arb_seed = QCheck.int_range 0 100_000

let prop_lint_verdict_sound =
  QCheck.Test.make
    ~name:"conclusive lint verdicts agree with exhaustive Ambiguity.check"
    ~count:80 arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g =
         Random_grammar.general rng ~nonterminals:4 ~max_rules:3 ~max_rhs_len:3
       in
       match Grammar_lint.verdict (Grammar_lint.run g) with
       | `Unknown -> true
       | verdict -> (
         match Ambiguity.check ~fast:false g with
         | v -> v.Ambiguity.unambiguous = (verdict = `Unambiguous)
         | exception Invalid_argument _ -> QCheck.assume_fail ()))

let prop_fast_equals_slow =
  QCheck.Test.make
    ~name:"Ambiguity.check fast path agrees with the exhaustive path"
    ~count:80 arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g =
         Random_grammar.general rng ~nonterminals:4 ~max_rules:3 ~max_rhs_len:3
       in
       match
         ( Ambiguity.is_unambiguous ~fast:true g,
           Ambiguity.is_unambiguous ~fast:false g )
       with
       | a, b -> a = b
       | exception Invalid_argument _ -> QCheck.assume_fail ())

let random_nfa seed =
  let rng = Ucfg_util.Rng.create seed in
  let states = 2 + Ucfg_util.Rng.int rng 3 in
  let transitions =
    List.init
      (1 + Ucfg_util.Rng.int rng (2 * states))
      (fun _ ->
         ( Ucfg_util.Rng.int rng states,
           (if Ucfg_util.Rng.bool rng then 'a' else 'b'),
           Ucfg_util.Rng.int rng states ))
  in
  mk_nfa ~states ~initials:[ 0 ]
    ~finals:[ Ucfg_util.Rng.int rng states ]
    transitions

let prop_nfa_product_criterion =
  QCheck.Test.make
    ~name:"N006 fires exactly on ambiguous NFAs (random)" ~count:200 arb_seed
    (fun seed ->
       let a = random_nfa seed in
       let ambiguous = not (Ucfg_automata.Unambiguous.is_unambiguous a) in
       has_code "N006" (Nfa_lint.run a) = ambiguous)

(* --- semantic tier vs brute-force enumeration ----------------------------- *)

let random_g rng =
  Random_grammar.general rng ~nonterminals:4 ~max_rules:3 ~max_rhs_len:3

(* shortest-then-lexicographically-least word, the order every semantic
   witness is specified in *)
let least_word lang =
  Lang.fold
    (fun w acc ->
       match acc with
       | Some b when (String.length b, b) <= (String.length w, w) -> acc
       | _ -> Some w)
    lang None

let prop_semantic_universal_vs_brute =
  QCheck.Test.make
    ~name:"Semantic_lint.universal agrees with brute-force enumeration"
    ~count:200 arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g = random_g rng in
       match Analysis.language_exn g with
       | exception Invalid_argument _ -> QCheck.assume_fail ()
       | lang ->
         let brute =
           (not (Lang.is_empty lang))
           && (match Lang.uniform_length lang with
               | Some l -> Lang.equal lang (Lang.full Alphabet.binary l)
               | None -> false)
         in
         let r = SL.universal ~cross_check:true g in
         r.SL.cross_check = None
         && (match r.SL.status with
             | SL.Holds -> brute
             | SL.Fails w ->
               (not brute) && w.SL.in_first = Lang.mem w.SL.word lang
             | SL.Interrupted _ -> false))

let prop_semantic_relational_vs_brute =
  QCheck.Test.make
    ~name:
      "Semantic_lint inclusion/equivalence/disjointness agree with \
       brute-force Lang algebra, with least witnesses"
    ~count:200 arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g1 = random_g rng in
       let g2 = random_g rng in
       match (Analysis.language_exn g1, Analysis.language_exn g2) with
       | exception Invalid_argument _ -> QCheck.assume_fail ()
       | l1, l2 ->
         let fails_on expected (r : SL.report) in_first in_second =
           match r.SL.status with
           | SL.Fails w ->
             Some w.SL.word = expected
             && w.SL.in_first = in_first && w.SL.in_second = in_second
           | _ -> false
         in
         let inc = SL.includes ~cross_check:true g1 g2 in
         let inc_ok =
           if Lang.subset l1 l2 then inc.SL.status = SL.Holds
           else fails_on (least_word (Lang.diff l1 l2)) inc true false
         in
         let dis = SL.disjoint ~cross_check:true g1 g2 in
         let dis_ok =
           if Lang.disjoint l1 l2 then dis.SL.status = SL.Holds
           else fails_on (least_word (Lang.inter l1 l2)) dis true true
         in
         let eqv = SL.equiv ~cross_check:true g1 g2 in
         let eqv_ok =
           if Lang.equal l1 l2 then eqv.SL.status = SL.Holds
           else if not (Lang.subset l1 l2) then
             fails_on (least_word (Lang.diff l1 l2)) eqv true false
           else fails_on (least_word (Lang.diff l2 l1)) eqv false true
         in
         inc_ok && dis_ok && eqv_ok
         && List.for_all
              (fun (r : SL.report) -> r.SL.cross_check = None)
              [ inc; dis; eqv ])

(* every observable field of a report, flattened for equality *)
let report_fingerprint (r : SL.report) =
  let status =
    match r.SL.status with
    | SL.Holds -> "holds"
    | SL.Fails w ->
      Printf.sprintf "fails:%s:%b:%b" w.SL.word w.SL.in_first w.SL.in_second
    | SL.Interrupted reason -> "interrupted:" ^ Guard.reason_code reason
  in
  let card = function None -> "-" | Some c -> Bignum.to_string c in
  Printf.sprintf "%s|%s|%b|%s|%s|%b" status
    (match r.SL.backend with
     | SL.Counting -> "counting"
     | SL.Packed -> "packed"
     | SL.Mixed -> "mixed")
    r.SL.vacuous (card r.SL.cardinal) (card r.SL.cardinal2)
    (r.SL.cross_check = None)

let prop_semantic_jobs_invariant =
  QCheck.Test.make
    ~name:"semantic reports are identical at jobs 1 and jobs 4" ~count:60
    arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g1 = random_g rng in
       let g2 = random_g rng in
       let run jobs =
         with_global_jobs jobs (fun () ->
           try
             Some
               (List.map report_fingerprint
                  [
                    SL.universal ~cross_check:true g1;
                    SL.includes g1 g2;
                    SL.equiv g1 g2;
                    SL.disjoint g1 g2;
                  ])
           with Invalid_argument _ -> None)
       in
       match (run 1, run 4) with
       | Some a, Some b -> a = b
       | None, None -> QCheck.assume_fail ()
       | _ -> false)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lint_verdict_sound; prop_fast_equals_slow; prop_nfa_product_criterion;
      prop_semantic_universal_vs_brute; prop_semantic_relational_vs_brute;
      prop_semantic_jobs_invariant ]

let () =
  Alcotest.run "ucfg_lint"
    [
      ( "grammar codes",
        [
          Alcotest.test_case "useless nonterminals" `Quick
            test_useless_nonterminals;
          Alcotest.test_case "empty language" `Quick test_empty_language;
          Alcotest.test_case "self reference" `Quick test_self_reference;
          Alcotest.test_case "unit cycle" `Quick test_unit_cycle;
          Alcotest.test_case "epsilon cycle" `Quick test_epsilon_cycle;
          Alcotest.test_case "infinite language" `Quick test_infinite_language;
          Alcotest.test_case "unit duplication" `Quick test_unit_duplication;
          Alcotest.test_case "CNF and start on rhs" `Quick
            test_cnf_and_start_on_rhs;
          Alcotest.test_case "heuristics and probe" `Quick
            test_heuristics_and_probe;
          Alcotest.test_case "certificate" `Quick test_certificate;
          Alcotest.test_case "registry" `Quick test_registry_complete;
        ] );
      ( "semantic tier",
        [
          Alcotest.test_case "universality" `Quick test_semantic_universal_unit;
          Alcotest.test_case "inclusion, equivalence, disjointness" `Quick
            test_semantic_relational_unit;
          Alcotest.test_case "guard trip degrades to partial" `Quick
            test_semantic_guard_trip;
          Alcotest.test_case "typed certificate verdict" `Quick
            test_certificate_verdict_typed;
          Alcotest.test_case "deep tier in Grammar_lint.run" `Quick
            test_semantic_lint_tier;
          Alcotest.test_case "packed first codes" `Quick
            test_packed_first_codes;
        ] );
      ( "fast path",
        [
          Alcotest.test_case "certificate" `Quick test_fast_path_certificate;
          Alcotest.test_case "witness" `Quick test_fast_path_witness;
          Alcotest.test_case "contract preserved" `Quick
            test_fast_path_contract;
        ] );
      ( "nfa codes",
        [
          Alcotest.test_case "useless states" `Quick test_nfa_useless_states;
          Alcotest.test_case "epsilon skips product" `Quick
            test_nfa_epsilon_skips_product;
          Alcotest.test_case "fan-out and empty" `Quick
            test_nfa_fanout_and_empty;
          Alcotest.test_case "ambiguous pair" `Quick test_nfa_ambiguous;
          Alcotest.test_case "L_n NFA" `Quick test_nfa_ln_build_ambiguous;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "JSON well-formed" `Quick test_json_wellformed;
          Alcotest.test_case "text report" `Quick test_text_report;
        ] );
      ("properties", qtests);
    ]
