(* The parallel execution layer: the Pool combinators are drop-in
   replacements for their List counterparts at every job count, exceptions
   propagate deterministically, and the wired-in consumers —
   Analysis.language, Ambiguity.check/profile/ambiguous_witness,
   Search.minimal_cnf_size — return identical verdicts whether they run
   on one domain or many. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_core
open Ucfg_exec
module Bignum = Ucfg_util.Bignum
module Rng = Ucfg_util.Rng

let with_pool jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* flip the process-wide pool, restoring the previous size afterwards *)
let with_global_jobs jobs f =
  let saved = Exec.jobs () in
  Exec.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.set_jobs saved) f

(* --- chunking ---------------------------------------------------------- *)

let test_chunk_reassembles () =
  List.iter
    (fun (pieces, n) ->
       let xs = List.init n Fun.id in
       let cs = Pool.chunk ~pieces xs in
       Alcotest.(check (list int))
         (Printf.sprintf "concat of %d pieces over %d" pieces n)
         xs (List.concat cs);
       Alcotest.(check bool) "piece count" true (List.length cs <= max 1 pieces);
       Alcotest.(check bool) "no empty piece" true
         (List.for_all (fun c -> c <> []) cs);
       let sizes = List.map List.length cs in
       let mx = List.fold_left max 0 sizes
       and mn = List.fold_left min max_int sizes in
       Alcotest.(check bool) "balanced" true (n = 0 || mx - mn <= 1))
    [ (1, 10); (3, 10); (4, 4); (7, 3); (16, 100); (5, 0); (2, 1) ]

(* --- the combinators match their List counterparts --------------------- *)

let prop_map_matches =
  QCheck.Test.make ~name:"Pool.map = List.map at any job count" ~count:100
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (jobs, xs) ->
       let f x = (x * x) + 3 in
       with_pool jobs (fun p -> Pool.map p f xs = List.map f xs))

let prop_map_reduce_matches =
  QCheck.Test.make
    ~name:"Pool.map_reduce = sequential fold (associative reduce)" ~count:100
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (jobs, xs) ->
       let f x = x + 1 in
       with_pool jobs (fun p ->
           Pool.map_reduce p ~map:f ~reduce:( + ) 0 xs
           = List.fold_left (fun acc x -> acc + f x) 0 xs))

let prop_find_map_matches =
  QCheck.Test.make ~name:"Pool.find_map = List.find_map" ~count:200
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (jobs, xs) ->
       let f x = if x mod 3 = 0 then Some (x * 7) else None in
       with_pool jobs (fun p -> Pool.find_map p f xs = List.find_map f xs))

let prop_run_list_ordered =
  QCheck.Test.make ~name:"Pool.run_list preserves submission order" ~count:50
    QCheck.(pair (int_range 2 5) (int_range 2 64))
    (fun (jobs, n) ->
       with_pool jobs (fun p ->
           Pool.run_list p (List.init n (fun i () -> i)) = List.init n Fun.id))

(* --- exception propagation --------------------------------------------- *)

exception Boom of int

let test_exception_first_wins () =
  (* several thunks raise; the earliest in submission order must surface,
     regardless of which domain finished first *)
  with_pool 4 (fun p ->
      List.iter
        (fun n ->
           let f x = if x mod 5 = 3 then raise (Boom x) else x in
           let xs = List.init n Fun.id in
           let expected = List.find_opt (fun x -> x mod 5 = 3) xs in
           match (expected, Pool.map p f xs) with
           | None, ys -> Alcotest.(check (list int)) "no raise" xs ys
           | Some x, _ -> Alcotest.failf "expected Boom %d" x
           | exception Boom got ->
             Alcotest.(check int) "first failure in list order"
               (Option.get expected) got)
        [ 4; 8; 17; 40; 100 ];
      (* the pool survives failed batches *)
      Alcotest.(check (list int)) "pool still works" [ 2; 4; 6 ]
        (Pool.map p (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_nested_fan_out () =
  (* fan-out from inside a worker must fall back to the sequential path
     rather than deadlock on the queue its caller is blocked on *)
  with_pool 2 (fun p ->
      let inner x = Pool.map p (fun y -> y + 1) [ x; x + 1 ] in
      Alcotest.(check (list (list int)))
        "nested map"
        [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]
        (Pool.map p inner [ 0; 1; 2 ]))

(* --- jobs-invariance of the wired-in consumers ------------------------- *)

let lang_testable = Alcotest.testable Lang.pp Lang.equal

let test_language_jobs_invariant () =
  (* log_cfg 6 is large enough (|L_6| = 3367) to cross the parallel
     threshold inside Analysis.language *)
  let g = Constructions.log_cfg 6 in
  let reference = with_global_jobs 1 (fun () -> Analysis.language_exn g) in
  List.iter
    (fun jobs ->
       Alcotest.check lang_testable
         (Printf.sprintf "L_6 materialisation, jobs=%d" jobs)
         reference
         (with_global_jobs jobs (fun () -> Analysis.language_exn g)))
    [ 2; 4 ];
  Alcotest.check lang_testable "Ln reference" (Ln.language 6) reference

let test_concat_jobs_invariant () =
  let l1 = Lang.full Alphabet.binary 7 and l2 = Lang.full Alphabet.binary 3 in
  let seq = with_global_jobs 1 (fun () -> Lang.concat l1 l2) in
  let par = with_global_jobs 4 (fun () -> Lang.concat l1 l2) in
  Alcotest.check lang_testable "2^7 x 2^3 concat" seq par;
  Alcotest.(check int) "cardinal" 1024 (Lang.cardinal par)

let check_fields (v : Ambiguity.verdict) =
  ( v.Ambiguity.unambiguous,
    Option.map Bignum.to_string v.Ambiguity.total_trees,
    v.Ambiguity.word_count )

let prop_ambiguity_check_jobs_invariant =
  QCheck.Test.make
    ~name:"Ambiguity.check / profile / witness are jobs-invariant" ~count:25
    QCheck.(triple (int_range 0 10_000) (int_range 2 5) (int_range 1 3))
    (fun (seed, word_len, variants) ->
       let g =
         Random_grammar.fixed_length (Rng.create seed) ~word_len ~variants
       in
       (* ~fast:false forces the exhaustive counting path on every run *)
       let run jobs =
         with_global_jobs jobs (fun () ->
             ( check_fields (Ambiguity.check ~fast:false g),
               (Ambiguity.profile g).Ambiguity.histogram,
               Ambiguity.ambiguous_witness ~fast:false g ))
       in
       run 1 = run 4)

let search_fields (r : Search.grammar_search) =
  ( r.Search.minimal_size,
    Option.map Grammar.to_string r.Search.witness,
    r.Search.nodes_explored,
    r.Search.budget_exhausted )

let test_search_jobs_invariant () =
  let cases =
    [
      ("L_1", Ln.language 1, None, false);
      ("L_1 unambiguous", Ln.language 1, None, true);
      ("{ab,ba}", Lang.of_list [ "ab"; "ba" ], None, false);
      ("L_2 budget 100", Ln.language 2, Some 100, false);
      ("{aa,ab} budget 2000", Lang.of_list [ "aa"; "ab" ], Some 2000, false);
    ]
  in
  List.iter
    (fun (name, l, budget, unambiguous) ->
       let run jobs =
         with_global_jobs jobs (fun () ->
             search_fields
               (Search.minimal_cnf_size ~unambiguous ?budget Alphabet.binary l))
       in
       let r1 = run 1 and r4 = run 4 in
       Alcotest.(check bool)
         (name ^ ": jobs=1 and jobs=4 agree (incl. nodes and witness)")
         true (r1 = r4))
    cases

let test_search_budget_replay () =
  (* the budget-exhausted verdict must report the sequential node count *)
  let r =
    with_global_jobs 4 (fun () ->
        Search.minimal_cnf_size ~budget:100 Alphabet.binary (Ln.language 2))
  in
  Alcotest.(check bool) "exhausted" true r.Search.budget_exhausted;
  Alcotest.(check int) "nodes = budget + 1" 101 r.Search.nodes_explored

let () =
  Alcotest.run "ucfg_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "chunking reassembles" `Quick
            test_chunk_reassembles;
          Alcotest.test_case "first exception wins" `Quick
            test_exception_first_wins;
          Alcotest.test_case "nested fan-out is sequential" `Quick
            test_nested_fan_out;
        ]
        @ List.map QCheck_alcotest.to_alcotest
          [
            prop_map_matches; prop_map_reduce_matches; prop_find_map_matches;
            prop_run_list_ordered;
          ] );
      ( "consumers",
        [
          Alcotest.test_case "language materialisation" `Quick
            test_language_jobs_invariant;
          Alcotest.test_case "Lang.concat" `Quick test_concat_jobs_invariant;
          Alcotest.test_case "minimal CNF search" `Slow
            test_search_jobs_invariant;
          Alcotest.test_case "search budget replay" `Quick
            test_search_budget_replay;
        ]
        @ List.map QCheck_alcotest.to_alcotest
          [ prop_ambiguity_check_jobs_invariant ] );
    ]
