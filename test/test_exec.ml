(* The parallel execution layer: the Pool combinators are drop-in
   replacements for their List counterparts at every job count, exceptions
   propagate deterministically, and the wired-in consumers —
   Analysis.language, Ambiguity.check/profile/ambiguous_witness,
   Search.minimal_cnf_size — return identical verdicts whether they run
   on one domain or many. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_core
open Ucfg_exec
module Bignum = Ucfg_util.Bignum
module Rng = Ucfg_util.Rng

let with_pool jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* flip the process-wide pool, restoring the previous size afterwards *)
let with_global_jobs jobs f =
  let saved = Exec.jobs () in
  Exec.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.set_jobs saved) f

(* --- chunking ---------------------------------------------------------- *)

let test_chunk_reassembles () =
  List.iter
    (fun (pieces, n) ->
       let xs = List.init n Fun.id in
       let cs = Pool.chunk ~pieces xs in
       Alcotest.(check (list int))
         (Printf.sprintf "concat of %d pieces over %d" pieces n)
         xs (List.concat cs);
       Alcotest.(check bool) "piece count" true (List.length cs <= max 1 pieces);
       Alcotest.(check bool) "no empty piece" true
         (List.for_all (fun c -> c <> []) cs);
       let sizes = List.map List.length cs in
       let mx = List.fold_left max 0 sizes
       and mn = List.fold_left min max_int sizes in
       Alcotest.(check bool) "balanced" true (n = 0 || mx - mn <= 1))
    [ (1, 10); (3, 10); (4, 4); (7, 3); (16, 100); (5, 0); (2, 1) ]

(* --- the combinators match their List counterparts --------------------- *)

let prop_map_matches =
  QCheck.Test.make ~name:"Pool.map = List.map at any job count" ~count:100
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (jobs, xs) ->
       let f x = (x * x) + 3 in
       with_pool jobs (fun p -> Pool.map p f xs = List.map f xs))

let prop_map_reduce_matches =
  QCheck.Test.make
    ~name:"Pool.map_reduce = sequential fold (associative reduce)" ~count:100
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (jobs, xs) ->
       let f x = x + 1 in
       with_pool jobs (fun p ->
           Pool.map_reduce p ~map:f ~reduce:( + ) 0 xs
           = List.fold_left (fun acc x -> acc + f x) 0 xs))

let prop_find_map_matches =
  QCheck.Test.make ~name:"Pool.find_map = List.find_map" ~count:200
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (jobs, xs) ->
       let f x = if x mod 3 = 0 then Some (x * 7) else None in
       with_pool jobs (fun p -> Pool.find_map p f xs = List.find_map f xs))

let prop_run_list_ordered =
  QCheck.Test.make ~name:"Pool.run_list preserves submission order" ~count:50
    QCheck.(pair (int_range 2 5) (int_range 2 64))
    (fun (jobs, n) ->
       with_pool jobs (fun p ->
           Pool.run_list p (List.init n (fun i () -> i)) = List.init n Fun.id))

(* --- exception propagation --------------------------------------------- *)

exception Boom of int

let test_exception_first_wins () =
  (* several thunks raise; the earliest in submission order must surface,
     regardless of which domain finished first *)
  with_pool 4 (fun p ->
      List.iter
        (fun n ->
           let f x = if x mod 5 = 3 then raise (Boom x) else x in
           let xs = List.init n Fun.id in
           let expected = List.find_opt (fun x -> x mod 5 = 3) xs in
           match (expected, Pool.map p f xs) with
           | None, ys -> Alcotest.(check (list int)) "no raise" xs ys
           | Some x, _ -> Alcotest.failf "expected Boom %d" x
           | exception Boom got ->
             Alcotest.(check int) "first failure in list order"
               (Option.get expected) got)
        [ 4; 8; 17; 40; 100 ];
      (* the pool survives failed batches *)
      Alcotest.(check (list int)) "pool still works" [ 2; 4; 6 ]
        (Pool.map p (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_nested_fan_out () =
  (* fan-out from inside a worker must fall back to the sequential path
     rather than deadlock on the queue its caller is blocked on *)
  with_pool 2 (fun p ->
      let inner x = Pool.map p (fun y -> y + 1) [ x; x + 1 ] in
      Alcotest.(check (list (list int)))
        "nested map"
        [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]
        (Pool.map p inner [ 0; 1; 2 ]))

(* --- jobs-invariance of the wired-in consumers ------------------------- *)

let lang_testable = Alcotest.testable Lang.pp Lang.equal

let test_language_jobs_invariant () =
  (* log_cfg 6 is large enough (|L_6| = 3367) to cross the parallel
     threshold inside Analysis.language *)
  let g = Constructions.log_cfg 6 in
  let reference = with_global_jobs 1 (fun () -> Analysis.language_exn g) in
  List.iter
    (fun jobs ->
       Alcotest.check lang_testable
         (Printf.sprintf "L_6 materialisation, jobs=%d" jobs)
         reference
         (with_global_jobs jobs (fun () -> Analysis.language_exn g)))
    [ 2; 4 ];
  Alcotest.check lang_testable "Ln reference" (Ln.language 6) reference

let test_concat_jobs_invariant () =
  let l1 = Lang.full Alphabet.binary 7 and l2 = Lang.full Alphabet.binary 3 in
  let seq = with_global_jobs 1 (fun () -> Lang.concat l1 l2) in
  let par = with_global_jobs 4 (fun () -> Lang.concat l1 l2) in
  Alcotest.check lang_testable "2^7 x 2^3 concat" seq par;
  Alcotest.(check int) "cardinal" 1024 (Lang.cardinal par)

let check_fields (v : Ambiguity.verdict) =
  ( v.Ambiguity.unambiguous,
    Option.map Bignum.to_string v.Ambiguity.total_trees,
    v.Ambiguity.word_count )

let prop_ambiguity_check_jobs_invariant =
  QCheck.Test.make
    ~name:"Ambiguity.check / profile / witness are jobs-invariant" ~count:25
    QCheck.(triple (int_range 0 10_000) (int_range 2 5) (int_range 1 3))
    (fun (seed, word_len, variants) ->
       let g =
         Random_grammar.fixed_length (Rng.create seed) ~word_len ~variants
       in
       (* ~fast:false forces the exhaustive counting path on every run *)
       let run jobs =
         with_global_jobs jobs (fun () ->
             ( check_fields (Ambiguity.check ~fast:false g),
               (Ambiguity.profile g).Ambiguity.histogram,
               Ambiguity.ambiguous_witness ~fast:false g ))
       in
       run 1 = run 4)

let search_fields (r : Search.grammar_search) =
  ( r.Search.minimal_size,
    Option.map Grammar.to_string r.Search.witness,
    r.Search.nodes_explored,
    r.Search.budget_exhausted )

let test_search_jobs_invariant () =
  let cases =
    [
      ("L_1", Ln.language 1, None, false);
      ("L_1 unambiguous", Ln.language 1, None, true);
      ("{ab,ba}", Lang.of_list [ "ab"; "ba" ], None, false);
      ("L_2 budget 100", Ln.language 2, Some 100, false);
      ("{aa,ab} budget 2000", Lang.of_list [ "aa"; "ab" ], Some 2000, false);
    ]
  in
  List.iter
    (fun (name, l, budget, unambiguous) ->
       let run jobs =
         with_global_jobs jobs (fun () ->
             search_fields
               (Search.minimal_cnf_size ~unambiguous ?budget Alphabet.binary l))
       in
       let r1 = run 1 and r4 = run 4 in
       Alcotest.(check bool)
         (name ^ ": jobs=1 and jobs=4 agree (incl. nodes and witness)")
         true (r1 = r4))
    cases

(* --- resource guard ---------------------------------------------------- *)

let test_guard_timeout_interrupts_search () =
  (* the n=3 search space is hours deep: a 0.2 s deadline must interrupt
     it promptly at any job count, with the same outcome kind *)
  List.iter
    (fun jobs ->
       let t0 = Unix.gettimeofday () in
       let r =
         with_global_jobs jobs (fun () ->
             Search.minimal_cnf_size
               ~guard:(Guard.create ~timeout:0.2 ())
               Alphabet.binary (Ln.language 3))
       in
       let elapsed = Unix.gettimeofday () -. t0 in
       Alcotest.(check bool)
         (Printf.sprintf "interrupted by timeout, jobs=%d" jobs)
         true
         (r.Search.interrupted = Some Guard.Timeout);
       Alcotest.(check bool)
         (Printf.sprintf "no verdict on a partial run, jobs=%d" jobs)
         true
         (r.Search.minimal_size = None && r.Search.witness = None);
       Alcotest.(check bool)
         (Printf.sprintf "partial progress reported, jobs=%d" jobs)
         true (r.Search.nodes_explored > 0);
       Alcotest.(check bool)
         (Printf.sprintf "prompt cooperative stop (%.2fs), jobs=%d" elapsed
            jobs)
         true (elapsed < 2.0))
    [ 1; 4 ]

let test_guard_budget_interrupts_search () =
  List.iter
    (fun jobs ->
       let r =
         with_global_jobs jobs (fun () ->
             Search.minimal_cnf_size
               ~guard:(Guard.create ~budget:5_000 ())
               Alphabet.binary (Ln.language 3))
       in
       Alcotest.(check bool)
         (Printf.sprintf "interrupted by budget, jobs=%d" jobs)
         true
         (r.Search.interrupted = Some Guard.Budget))
    [ 1; 4 ]

let test_guard_capture_outcomes () =
  (* benign run *)
  let g = Guard.create ~budget:1_000 () in
  (match Guard.capture g ~partial:(fun () -> -1) (fun () -> 42) with
   | Guard.Done 42 -> ()
   | _ -> Alcotest.fail "expected Done 42");
  (* cancellation observed at the next poll, partial evaluated after *)
  let g = Guard.create () in
  let progress = ref 0 in
  (match
     Guard.capture g
       ~partial:(fun () -> !progress)
       (fun () ->
          progress := 7;
          Guard.cancel g;
          Guard.tick g;
          0)
   with
   | Guard.Cancelled 7 -> ()
   | _ -> Alcotest.fail "expected Cancelled 7");
  (* a budget guard maps to Budget_exhausted *)
  let g = Guard.create ~budget:10 () in
  (match
     Guard.capture g
       ~partial:(fun () -> ())
       (fun () ->
          while true do
            Guard.tick g
          done)
   with
   | Guard.Budget_exhausted () -> ()
   | _ -> Alcotest.fail "expected Budget_exhausted");
  (* the ambient unlimited guard must not be poisonable *)
  Guard.cancel Guard.unlimited;
  Guard.tick Guard.unlimited;
  Alcotest.(check bool) "unlimited never trips" true
    (Guard.tripped Guard.unlimited = None)

let test_guard_outcome_kind_jobs_invariant () =
  (* first-trip-wins CAS: whichever domain trips first, the recorded root
     reason — and hence the surfaced outcome kind — is the same *)
  let kind jobs =
    let r =
      with_global_jobs jobs (fun () ->
          Search.minimal_cnf_size
            ~guard:(Guard.create ~budget:2_000 ~timeout:60.0 ())
            Alphabet.binary (Ln.language 3))
    in
    r.Search.interrupted
  in
  Alcotest.(check bool) "jobs=1 and jobs=4 agree on the reason kind" true
    (kind 1 = kind 4 && kind 1 = Some Guard.Budget)

(* --- chaos harness ------------------------------------------------------ *)

let with_chaos cfg f =
  let saved = Chaos.config () in
  Chaos.set (Some cfg);
  Fun.protect ~finally:(fun () -> Chaos.set saved) f

let test_chaos_pure_batches_repaired () =
  (* injected faults fire before the task body, so run_list re-runs the
     slot in the caller: results must be exactly the sequential ones *)
  with_chaos { Chaos.seed = 1066; rate = 0.3 } (fun () ->
      let faults0 = Chaos.faults_injected () in
      with_pool 4 (fun p ->
          List.iter
            (fun n ->
               let xs = List.init n Fun.id in
               let f x = (x * 17) + 1 in
               Alcotest.(check (list int))
                 (Printf.sprintf "chaotic map of %d" n)
                 (List.map f xs) (Pool.map p f xs))
            [ 10; 40; 100; 100; 100; 100 ]);
      Alcotest.(check bool) "the harness actually injected faults" true
        (Chaos.faults_injected () > faults0))

let test_chaos_first_error_deterministic () =
  (* real failures must still surface as the first in submission order,
     and not be masked (or reordered) by injected ones *)
  with_chaos { Chaos.seed = 7; rate = 0.3 } (fun () ->
      with_pool 4 (fun p ->
          for _ = 1 to 5 do
            let f x = if x mod 5 = 3 then raise (Boom x) else x in
            match Pool.map p f (List.init 60 Fun.id) with
            | _ -> Alcotest.fail "expected Boom 3"
            | exception Boom got ->
              Alcotest.(check int) "first failure in list order" 3 got
          done))

let test_pool_reusable_after_failures () =
  (* regression for the drain logic: a batch that fails must leave the
     pool able to run the next batch — with and without chaos, and the
     follow-up batch must be clean *)
  let exercise () =
    with_pool 4 (fun p ->
        for round = 1 to 3 do
          (match
             Pool.run_list p
               (List.init 40 (fun i () ->
                    if i = 11 then raise (Boom i) else i))
           with
           | _ -> Alcotest.fail "expected Boom 11"
           | exception Boom got ->
             Alcotest.(check int)
               (Printf.sprintf "round %d failure" round)
               11 got);
          Alcotest.(check (list int))
            (Printf.sprintf "round %d clean follow-up" round)
            (List.init 40 (fun i -> i * i))
            (Pool.run_list p (List.init 40 (fun i () -> i * i)))
        done)
  in
  exercise ();
  with_chaos { Chaos.seed = 2025; rate = 0.2 } exercise

let test_chaos_consumers_unchanged () =
  (* a governed end-to-end consumer under chaos: same verdicts as without *)
  let g = Constructions.log_cfg 5 in
  let reference = Analysis.language_exn g in
  with_chaos { Chaos.seed = 3; rate = 0.1 } (fun () ->
      with_global_jobs 4 (fun () ->
          Alcotest.check lang_testable "L_5 under chaos" reference
            (Analysis.language_exn g)))

let test_search_budget_replay () =
  (* the budget-exhausted verdict must report the sequential node count *)
  let r =
    with_global_jobs 4 (fun () ->
        Search.minimal_cnf_size ~budget:100 Alphabet.binary (Ln.language 2))
  in
  Alcotest.(check bool) "exhausted" true r.Search.budget_exhausted;
  Alcotest.(check int) "nodes = budget + 1" 101 r.Search.nodes_explored

let () =
  Alcotest.run "ucfg_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "chunking reassembles" `Quick
            test_chunk_reassembles;
          Alcotest.test_case "first exception wins" `Quick
            test_exception_first_wins;
          Alcotest.test_case "nested fan-out is sequential" `Quick
            test_nested_fan_out;
        ]
        @ List.map QCheck_alcotest.to_alcotest
          [
            prop_map_matches; prop_map_reduce_matches; prop_find_map_matches;
            prop_run_list_ordered;
          ] );
      ( "consumers",
        [
          Alcotest.test_case "language materialisation" `Quick
            test_language_jobs_invariant;
          Alcotest.test_case "Lang.concat" `Quick test_concat_jobs_invariant;
          Alcotest.test_case "minimal CNF search" `Slow
            test_search_jobs_invariant;
          Alcotest.test_case "search budget replay" `Quick
            test_search_budget_replay;
        ]
        @ List.map QCheck_alcotest.to_alcotest
          [ prop_ambiguity_check_jobs_invariant ] );
      ( "guard",
        [
          Alcotest.test_case "timeout interrupts the search" `Quick
            test_guard_timeout_interrupts_search;
          Alcotest.test_case "budget interrupts the search" `Quick
            test_guard_budget_interrupts_search;
          Alcotest.test_case "capture maps outcomes" `Quick
            test_guard_capture_outcomes;
          Alcotest.test_case "outcome kind is jobs-invariant" `Quick
            test_guard_outcome_kind_jobs_invariant;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "pure batches repaired" `Quick
            test_chaos_pure_batches_repaired;
          Alcotest.test_case "first error deterministic" `Quick
            test_chaos_first_error_deterministic;
          Alcotest.test_case "pool reusable after failures" `Quick
            test_pool_reusable_after_failures;
          Alcotest.test_case "consumers unchanged" `Quick
            test_chaos_consumers_unchanged;
        ] );
    ]
