(* Checkpointable sharded search: resuming an interrupted search — in any
   number of slices, at any job count — lands on exactly the record a
   single uninterrupted run produces; the verdict memo moves wall-clock
   only; damaged checkpoints degrade to a fresh run with a warning, never
   to a wrong answer. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_core
open Ucfg_exec
module Cover_search = Ucfg_comm.Cover_search

(* flip the process-wide pool, restoring the previous size afterwards *)
let with_global_jobs jobs f =
  let saved = Exec.jobs () in
  Exec.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.set_jobs saved) f

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ucfg_resume_%d_%d" (Unix.getpid ()) !dir_counter)

let search_fields r =
  ( (r.Search.minimal_size, Option.map Grammar.to_string r.Search.witness),
    (r.Search.nodes_explored, r.Search.budget_exhausted) )

let fields_testable =
  Alcotest.(pair (pair (option int) (option string)) (pair int bool))

(* run under a per-slice tick guard, resuming until the search completes;
   returns the final record and the number of resumed slices *)
let search_in_slices ~dir ~guard_budget ?unambiguous ?max_nonterminals
    ?max_size ?budget l =
  let rec go resumes resume =
    let guard = Guard.create ~budget:guard_budget () in
    let r =
      Search.minimal_cnf_size ~guard ?unambiguous ?max_nonterminals ?max_size
        ?budget ~checkpoint:dir ~resume Alphabet.binary l
    in
    match r.Search.interrupted with
    | None -> (r, resumes)
    | Some _ ->
      Alcotest.(check bool)
        "interrupted slice writes a checkpoint" true
        (r.Search.checkpoint_written <> None);
      if resumes > 60 then
        Alcotest.fail "resume loop did not converge in 60 slices";
      go (resumes + 1) true
  in
  go 0 false

(* --- resume equivalence ------------------------------------------------ *)

(* found-witness instance: L_1 has a size-3 CNF grammar *)
let test_resume_equivalence_found () =
  List.iter
    (fun jobs ->
       with_global_jobs jobs (fun () ->
           let l = Ln.language 1 in
           let whole = Search.minimal_cnf_size Alphabet.binary l in
           let dir = fresh_dir () in
           let sliced, resumes =
             search_in_slices ~dir ~guard_budget:250 l
           in
           Alcotest.(check bool)
             (Printf.sprintf "jobs %d: took >= 2 resumed slices" jobs)
             true (resumes >= 2);
           Alcotest.(check bool)
             (Printf.sprintf "jobs %d: final slice resumed" jobs)
             true sliced.Search.resumed;
           Alcotest.check fields_testable
             (Printf.sprintf "jobs %d: sliced = whole" jobs)
             (search_fields whole) (search_fields sliced);
           Alcotest.(check bool) "checkpoint cleared on completion" false
             (Sys.file_exists (Ucfg_exec.Checkpoint.file ~dir))))
    [ 1; 4 ]

(* exhaustive-refutation instance: L_2 has no CNF grammar with 2
   nonterminals within size 8, so every level is fully explored *)
let test_resume_equivalence_refuted () =
  List.iter
    (fun jobs ->
       with_global_jobs jobs (fun () ->
           let l = Ln.language 2 in
           let whole =
             Search.minimal_cnf_size ~max_nonterminals:2 ~max_size:8
               Alphabet.binary l
           in
           Alcotest.(check (option int)) "instance refutes" None
             whole.Search.minimal_size;
           let dir = fresh_dir () in
           let sliced, resumes =
             search_in_slices ~dir ~guard_budget:4_000 ~max_nonterminals:2
               ~max_size:8 l
           in
           Alcotest.(check bool)
             (Printf.sprintf "jobs %d: took >= 2 resumed slices" jobs)
             true (resumes >= 2);
           Alcotest.check fields_testable
             (Printf.sprintf "jobs %d: sliced = whole" jobs)
             (search_fields whole) (search_fields sliced)))
    [ 1; 4 ]

(* --- memo on/off agreement --------------------------------------------- *)

let word_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun n ->
    map
      (fun bits ->
         String.init n (fun i -> if List.nth bits i then 'a' else 'b'))
      (list_repeat n bool))

let lang_arbitrary =
  QCheck.make
    ~print:(fun l -> String.concat "," (Lang.elements l))
    QCheck.Gen.(map Lang.of_list (list_size (int_range 1 4) word_gen))

let prop_memo_invisible =
  QCheck.Test.make
    ~name:"memo on/off: identical verdict, witness, nodes, budget" ~count:25
    lang_arbitrary
    (fun l ->
       let run memo =
         Search.minimal_cnf_size ~max_nonterminals:2 ~max_size:6
           ~budget:20_000 ~memo Alphabet.binary l
       in
       search_fields (run true) = search_fields (run false))

(* --- sharded memo under concurrent insertion --------------------------- *)

let test_memo_concurrent () =
  with_global_jobs 4 (fun () ->
      let m = Memo.create ~shards:4 () in
      let value k = "v:" ^ k in
      (* 40 concurrent writers over 10 distinct keys, all agreeing on the
         deterministic value — the memoisation contract *)
      let keys = List.init 40 (fun i -> Printf.sprintf "key%d" (i mod 10)) in
      let results =
        Exec.run_list
          (List.map
             (fun k () ->
                (match Memo.find m k with
                 | Some v ->
                   Alcotest.(check string) "read own kind of value" (value k) v
                 | None -> ());
                Memo.set m k (value k);
                (k, Memo.find m k))
             keys)
      in
      List.iter
        (fun (k, v) ->
           Alcotest.(check (option string)) "visible after set" (Some (value k)) v)
        results;
      Alcotest.(check int) "distinct keys" 10 (Memo.length m);
      let s = Memo.stats m in
      Alcotest.(check int) "one insert per distinct key" 10 s.Memo.inserts;
      Alcotest.(check int) "every lookup accounted" 80 (s.Memo.hits + s.Memo.misses);
      (* bulk-loading checkpointed entries touches no counters *)
      Memo.add_entries m [ ("key0", "stale"); ("extra", "x") ];
      Alcotest.(check (option string)) "first writer wins on reload"
        (Some (value "key0")) (Memo.find m "key0");
      Alcotest.(check int) "reloaded binding present" 11 (Memo.length m);
      let s' = Memo.stats m in
      Alcotest.(check int) "reload leaves inserts untouched" 10 s'.Memo.inserts)

(* --- damaged checkpoints degrade, never mislead ------------------------ *)

let trip_and_checkpoint dir =
  let guard = Guard.create ~budget:4_000 () in
  let r =
    Search.minimal_cnf_size ~guard ~max_nonterminals:2 ~max_size:8
      ~checkpoint:dir Alphabet.binary (Ln.language 2)
  in
  match r.Search.checkpoint_written with
  | Some path -> path
  | None -> Alcotest.fail "setup: expected a guard trip with a checkpoint"

let rewrite path f =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f bytes);
  close_out oc

let degraded_runs_fresh ~expect_warning dir =
  let r =
    Search.minimal_cnf_size ~max_nonterminals:2 ~max_size:8 ~checkpoint:dir
      ~resume:true Alphabet.binary (Ln.language 2)
  in
  Alcotest.(check bool) "did not resume" false r.Search.resumed;
  Alcotest.(check bool) "warning surfaced" expect_warning
    (r.Search.checkpoint_warning <> None);
  let whole =
    Search.minimal_cnf_size ~max_nonterminals:2 ~max_size:8 Alphabet.binary
      (Ln.language 2)
  in
  Alcotest.check fields_testable "fresh run, full answer"
    (search_fields whole) (search_fields r)

let test_corrupt_payload () =
  let dir = fresh_dir () in
  let path = trip_and_checkpoint dir in
  rewrite path (fun s ->
      (* flip one payload byte: the digest check must catch it *)
      let b = Bytes.of_string s in
      let i = String.length s - 2 in
      Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
      Bytes.to_string b);
  degraded_runs_fresh ~expect_warning:true dir

let test_truncated_payload () =
  let dir = fresh_dir () in
  let path = trip_and_checkpoint dir in
  rewrite path (fun s -> String.sub s 0 (String.length s / 2));
  degraded_runs_fresh ~expect_warning:true dir

let test_version_bump () =
  let dir = fresh_dir () in
  let path = trip_and_checkpoint dir in
  rewrite path (fun s ->
      let i = 1 + String.index s 'v' in
      let b = Bytes.of_string s in
      Bytes.set b i '9';
      Bytes.to_string b);
  degraded_runs_fresh ~expect_warning:true dir

let test_params_mismatch () =
  let dir = fresh_dir () in
  let _path = trip_and_checkpoint dir in
  (* same directory, different size cap: the checkpoint is for another
     search and must not be resumed *)
  let r =
    Search.minimal_cnf_size ~max_nonterminals:2 ~max_size:7 ~checkpoint:dir
      ~resume:true Alphabet.binary (Ln.language 2)
  in
  Alcotest.(check bool) "did not resume" false r.Search.resumed;
  Alcotest.(check bool) "warning surfaced" true
    (r.Search.checkpoint_warning <> None)

let test_absent_checkpoint () =
  let dir = fresh_dir () in
  let r =
    Search.minimal_cnf_size ~max_nonterminals:2 ~max_size:8 ~checkpoint:dir
      ~resume:true Alphabet.binary (Ln.language 2)
  in
  (* nothing to resume is not a fault: fresh run, no warning *)
  Alcotest.(check bool) "did not resume" false r.Search.resumed;
  Alcotest.(check (option string)) "no warning" None r.Search.checkpoint_warning

(* --- cover search ------------------------------------------------------ *)

let test_cover_resume () =
  let target = List.of_seq (Ln.codes 2) in
  let direct = Cover_search.minimum ~n:2 target in
  let expected =
    match direct with
    | Cover_search.Exact k -> k
    | _ -> Alcotest.fail "setup: n=2 cover should be exact"
  in
  let dir = fresh_dir () in
  let rec go slices resume =
    let r =
      Cover_search.minimum_run ~budget:400 ~checkpoint:dir ~resume ~n:2 target
    in
    match r.Cover_search.outcome with
    | Cover_search.Exact k -> (k, slices, r)
    | Cover_search.Budget_exhausted _ ->
      Alcotest.(check bool) "exhausted slice writes a checkpoint" true
        (r.Cover_search.checkpoint_written <> None);
      if slices > 60 then
        Alcotest.fail "cover resume did not converge in 60 slices";
      go (slices + 1) true
    | Cover_search.Interrupted _ -> Alcotest.fail "no guard installed"
  in
  let k, slices, last = go 0 false in
  Alcotest.(check int) "sliced minimum = direct minimum" expected k;
  Alcotest.(check bool) "took >= 1 resumed slice" true (slices >= 1);
  Alcotest.(check bool) "final slice resumed" true last.Cover_search.resumed;
  Alcotest.(check bool) "checkpoint cleared on completion" false
    (Sys.file_exists (Ucfg_exec.Checkpoint.file ~dir))

let test_cover_memo_agreement () =
  let target = List.of_seq (Ln.codes 2) in
  let on = Cover_search.minimum ~memo:true ~n:2 target in
  let off = Cover_search.minimum ~memo:false ~n:2 target in
  match (on, off) with
  | Cover_search.Exact a, Cover_search.Exact b ->
    Alcotest.(check int) "memo on/off agree" b a
  | _ -> Alcotest.fail "both should be exact"

let () =
  Alcotest.run "ucfg_search_resume"
    [
      ( "resume",
        [
          Alcotest.test_case "sliced = whole (witness found)" `Quick
            test_resume_equivalence_found;
          Alcotest.test_case "sliced = whole (refutation)" `Quick
            test_resume_equivalence_refuted;
        ] );
      ( "memo",
        [
          QCheck_alcotest.to_alcotest prop_memo_invisible;
          Alcotest.test_case "sharded concurrent inserts" `Quick
            test_memo_concurrent;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "corrupt payload" `Quick test_corrupt_payload;
          Alcotest.test_case "truncated payload" `Quick test_truncated_payload;
          Alcotest.test_case "version bump" `Quick test_version_bump;
          Alcotest.test_case "parameter mismatch" `Quick test_params_mismatch;
          Alcotest.test_case "absent checkpoint" `Quick test_absent_checkpoint;
        ] );
      ( "cover",
        [
          Alcotest.test_case "sliced = direct" `Quick test_cover_resume;
          Alcotest.test_case "memo on/off agree" `Quick
            test_cover_memo_agreement;
        ] );
    ]
