(* Tests for the CFG substrate: grammar core, trimming, CNF, analyses,
   parsing, counting, enumeration, the Lemma 10 transform and the paper's
   constructions. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
module BN = Ucfg_util.Bignum
module G = Grammar

let lang = Alcotest.testable Lang.pp Lang.equal
let bn = Alcotest.testable BN.pp BN.equal

(* a tiny handwritten grammar: S -> AB | BA; A -> a; B -> b
   language {ab, ba}, unambiguous *)
let tiny () =
  G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A"; "B" |]
    ~rules:
      [
        { G.lhs = 0; rhs = [ G.N 1; G.N 2 ] };
        { G.lhs = 0; rhs = [ G.N 2; G.N 1 ] };
        { G.lhs = 1; rhs = [ G.T 'a' ] };
        { G.lhs = 2; rhs = [ G.T 'b' ] };
      ]
    ~start:0

(* ambiguous: S -> AA; A -> a | aa ... "aaa" has two trees *)
let amb () =
  G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A" |]
    ~rules:
      [
        { G.lhs = 0; rhs = [ G.N 1; G.N 1 ] };
        { G.lhs = 1; rhs = [ G.T 'a' ] };
        { G.lhs = 1; rhs = [ G.T 'a'; G.T 'a' ] };
      ]
    ~start:0

(* infinite: S -> aS | a *)
let infinite () =
  G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
    ~rules:
      [
        { G.lhs = 0; rhs = [ G.T 'a'; G.N 0 ] };
        { G.lhs = 0; rhs = [ G.T 'a' ] };
      ]
    ~start:0

(* --- grammar core ------------------------------------------------------ *)

let test_size_measure () =
  (* the paper's measure: sum of |rhs| *)
  Alcotest.(check int) "tiny size" 6 (G.size (tiny ()));
  Alcotest.(check int) "amb size" 5 (G.size (amb ()))

let test_dependency_edges_deduplicated () =
  (* S mentions A twice in one rule and once in another: one edge *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.N 1; G.N 1 ] };
          { G.lhs = 0; rhs = [ G.N 1; G.T 'a' ] };
          { G.lhs = 1; rhs = [ G.T 'a' ] };
        ]
      ~start:0
  in
  Alcotest.(check (list (pair int int)))
    "edges are unique" [ (0, 1) ] (G.dependency_edges g)

let test_duplicate_rules_collapse () =
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
      ~rules:
        [ { G.lhs = 0; rhs = [ G.T 'a' ] }; { G.lhs = 0; rhs = [ G.T 'a' ] } ]
      ~start:0
  in
  Alcotest.(check int) "rule set semantics" 1 (G.rule_count g)

let test_make_validates () =
  Alcotest.check_raises "bad nonterminal"
    (Invalid_argument "Grammar.make: nonterminal 3 out of range") (fun () ->
        ignore
          (G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
             ~rules:[ { G.lhs = 0; rhs = [ G.N 3 ] } ]
             ~start:0));
  Alcotest.check_raises "bad terminal"
    (Invalid_argument "Grammar.make: terminal z not in alphabet") (fun () ->
        ignore
          (G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
             ~rules:[ { G.lhs = 0; rhs = [ G.T 'z' ] } ]
             ~start:0))

let test_builder () =
  let b = G.Builder.create Alphabet.binary in
  let s = G.Builder.fresh b "S" in
  let a = G.Builder.fresh_memo b "A" in
  let a' = G.Builder.fresh_memo b "A" in
  Alcotest.(check int) "memoized" a a';
  G.Builder.add_rule b s [ G.N a ];
  G.Builder.add_rule b a [ G.T 'a' ];
  let g = G.Builder.finish b ~start:s in
  Alcotest.(check int) "two nonterminals" 2 (G.nonterminal_count g);
  Alcotest.check lang "language" (Lang.singleton "a") (Analysis.language_exn g)

(* --- trim --------------------------------------------------------------- *)

let test_trim_removes_useless () =
  (* U unproductive, V unreachable *)
  let g =
    G.make ~alphabet:Alphabet.binary
      ~names:[| "S"; "U"; "V" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.T 'a' ] };
          { G.lhs = 0; rhs = [ G.N 1 ] };
          { G.lhs = 1; rhs = [ G.N 1 ] };
          { G.lhs = 2; rhs = [ G.T 'b' ] };
        ]
      ~start:0
  in
  let t = Trim.trim g in
  Alcotest.(check int) "only S left" 1 (G.nonterminal_count t);
  Alcotest.(check bool) "is_trim" true (Trim.is_trim t);
  Alcotest.check lang "language preserved" (Lang.singleton "a")
    (Analysis.language_exn t)

let test_trim_empty_language () =
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
      ~rules:[ { G.lhs = 0; rhs = [ G.N 0 ] } ]
      ~start:0
  in
  let t = Trim.trim g in
  Alcotest.check lang "empty" Lang.empty (Analysis.language_exn t)

(* --- analysis ----------------------------------------------------------- *)

let test_language_fixpoint () =
  Alcotest.check lang "tiny" (Lang.of_list [ "ab"; "ba" ])
    (Analysis.language_exn (tiny ()));
  Alcotest.check lang "amb" (Lang.of_list [ "aa"; "aaa"; "aaaa" ])
    (Analysis.language_exn (amb ()))

let test_language_overflow () =
  match Analysis.language ~max_len:3 (infinite ()) with
  | Error (`Length_exceeded 3) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected length overflow"

let test_is_finite () =
  Alcotest.(check bool) "tiny finite" true (Analysis.is_finite (tiny ()));
  Alcotest.(check bool) "infinite" false (Analysis.is_finite (infinite ()));
  (* a cyclic but useless nonterminal does not make the language infinite *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "U" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.T 'a' ] };
          { G.lhs = 1; rhs = [ G.T 'a'; G.N 1 ] };
        ]
      ~start:0
  in
  Alcotest.(check bool) "useless cycle" true (Analysis.is_finite g)

let test_count_trees_total () =
  Alcotest.check bn "tiny: 2 trees" (BN.of_int 2)
    (Analysis.count_trees_total (tiny ()));
  (* amb: words aa (1 tree: A.A), aaa (2 trees), aaaa (1 tree: AA.AA)
     total = 4 *)
  Alcotest.check bn "amb: 4 trees" (BN.of_int 4)
    (Analysis.count_trees_total (amb ()))

let test_witness () =
  (match Analysis.witness_word (tiny ()) with
   | Some w -> Alcotest.(check bool) "in language" true (w = "ab" || w = "ba")
   | None -> Alcotest.fail "expected witness");
  (* witness terminates even on cyclic grammars *)
  match Analysis.witness_word (infinite ()) with
  | Some "a" -> ()
  | other ->
    Alcotest.failf "expected shortest witness, got %s"
      (Option.value ~default:"none" other)

let test_fixed_lengths () =
  match Analysis.fixed_lengths (Cnf.of_grammar (tiny ())) with
  | Some (g, lens) -> Alcotest.(check int) "start len" 2 lens.(G.start g)
  | None -> Alcotest.fail "tiny is fixed-length"

let test_fixed_lengths_rejects () =
  Alcotest.(check bool)
    "amb not fixed-length" true
    (Analysis.fixed_lengths (Cnf.of_grammar (amb ())) = None)

(* --- CNF ---------------------------------------------------------------- *)

let constructions_sample () =
  [
    ("tiny", tiny ());
    ("amb", amb ());
    ("example3(1)", Constructions.example3 1);
    ("log_cfg(4)", Constructions.log_cfg 4);
    ("log_cfg(5)", Constructions.log_cfg 5);
    ("example4(3)", Constructions.example4 3);
  ]

let test_cnf_preserves_language () =
  List.iter
    (fun (name, g) ->
       let g' = Cnf.of_grammar g in
       Alcotest.(check bool) (name ^ " is cnf") true (Cnf.is_cnf g');
       Alcotest.check lang
         (name ^ " language preserved")
         (Analysis.language_exn g) (Analysis.language_exn g'))
    (constructions_sample ())

let test_cnf_size_bound () =
  List.iter
    (fun (name, g) ->
       let g' = Cnf.of_grammar g in
       (* |G'| <= c·|G|^2 with the paper's constant 1 once |G| is beyond
          toy size; we allow the additive slack of the START rule *)
       Alcotest.(check bool)
         (Printf.sprintf "%s: %d <= %d^2" name (G.size g') (G.size g))
         true
         (G.size g' <= (G.size g * G.size g) + 4))
    (constructions_sample ())

let test_cnf_epsilon () =
  (* language containing ε: S -> ε | ab *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S" |]
      ~rules:[ { G.lhs = 0; rhs = [] }; { G.lhs = 0; rhs = [ G.T 'a'; G.T 'b' ] } ]
      ~start:0
  in
  let g' = Cnf.of_grammar g in
  Alcotest.(check bool) "cnf" true (Cnf.is_cnf g');
  Alcotest.check lang "keeps ε" (Lang.of_list [ ""; "ab" ])
    (Analysis.language_exn g')

let test_nullable () =
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.N 1; G.T 'a' ] };
          { G.lhs = 1; rhs = [] };
          { G.lhs = 1; rhs = [ G.T 'b' ] };
        ]
      ~start:0
  in
  let nul = Cnf.nullable g in
  Alcotest.(check bool) "A nullable" true nul.(1);
  Alcotest.(check bool) "S not nullable" false nul.(0)

(* --- parsing and counting ---------------------------------------------- *)

let test_cyk_recognize () =
  let g = Cnf.of_grammar (tiny ()) in
  Alcotest.(check bool) "ab" true (Cyk.recognize g "ab");
  Alcotest.(check bool) "ba" true (Cyk.recognize g "ba");
  Alcotest.(check bool) "aa" false (Cyk.recognize g "aa");
  Alcotest.(check bool) "abc-length" false (Cyk.recognize g "aba")

let test_cyk_count_ambiguous () =
  (* count trees of the ORIGINAL amb grammar via Count_word (CNF may merge
     duplicate rules) *)
  Alcotest.check bn "aaa has 2 trees" (BN.of_int 2)
    (Count_word.trees (amb ()) "aaa");
  Alcotest.check bn "aa has 1 tree" BN.one (Count_word.trees (amb ()) "aa");
  Alcotest.check bn "a has 0 trees" BN.zero (Count_word.trees (amb ()) "a")

(* regression: the suffix-DP memo key used the word span as the radix for
   the rhs offset, so on words shorter than the longest rhs distinct
   (rule, offset) pairs aliased — at w = "" the count of S -> C a C's "a C"
   suffix (0) answered for S -> C, and ε vanished from the language *)
let test_count_word_short_word_memo () =
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "C" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.T 'b'; G.T 'a'; G.T 'b' ] };
          { G.lhs = 0; rhs = [ G.N 1; G.T 'a'; G.N 1 ] };
          { G.lhs = 0; rhs = [ G.N 1 ] };
          { G.lhs = 1; rhs = [] };
        ]
      ~start:0
  in
  Alcotest.check bn "ε has 1 tree" BN.one (Count_word.trees g "");
  Alcotest.check bn "a has 1 tree" BN.one (Count_word.trees g "a");
  Alcotest.check bn "bab has 1 tree" BN.one (Count_word.trees g "bab");
  Alcotest.check bn "b has 0 trees" BN.zero (Count_word.trees g "b")

let test_cyk_parse_valid () =
  let g = Cnf.of_grammar (Constructions.log_cfg 3) in
  let w = "aabaab" in
  match Cyk.parse g w with
  | None -> Alcotest.fail "should parse"
  | Some t ->
    Alcotest.(check string) "yield" w (Parse_tree.yield t);
    Alcotest.(check bool) "valid" true (Parse_tree.is_valid g (G.start g) t)

let test_cyk_all_trees () =
  let g = Cnf.of_grammar (Constructions.example3 1) in
  (* "aaaaaa" (= the Figure 1 word) has at least two parse trees: the
     grammar is ambiguous *)
  let trees = Cyk.all_trees ~limit:10 g "aaaaaa" in
  Alcotest.(check bool) "at least 2 trees" true (List.length trees >= 2);
  List.iter
    (fun t ->
       Alcotest.(check string) "yields back" "aaaaaa" (Parse_tree.yield t);
       Alcotest.(check bool) "valid" true (Parse_tree.is_valid g (G.start g) t))
    trees

let test_earley_agrees_with_cyk () =
  List.iter
    (fun (name, g) ->
       let cnf = Cnf.of_grammar g in
       let l = Analysis.language_exn g in
       match Lang.uniform_length l with
       | None -> ()
       | Some len ->
         Seq.iter
           (fun w ->
              let e = Earley.recognize g w in
              let c = Cyk.recognize cnf w in
              let m = Lang.mem w l in
              if e <> m || c <> m then
                Alcotest.failf "%s: disagreement on %s (earley=%b cyk=%b mem=%b)"
                  name w e c m)
           (Word.enumerate Alphabet.binary len))
    [ ("tiny", tiny ());
      ("log_cfg(3)", Constructions.log_cfg 3);
      ("example4(2)", Constructions.example4 2) ]

let test_earley_epsilon_rules () =
  (* S -> A S a | ε ; A -> ε : accepts a^k *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.N 1; G.N 0; G.T 'a' ] };
          { G.lhs = 0; rhs = [] };
          { G.lhs = 1; rhs = [] };
        ]
      ~start:0
  in
  Alcotest.(check bool) "ε" true (Earley.recognize g "");
  Alcotest.(check bool) "aaa" true (Earley.recognize g "aaa");
  Alcotest.(check bool) "ab" false (Earley.recognize g "ab")

let test_ambiguity_decisions () =
  Alcotest.(check bool) "tiny unambiguous" true (Ambiguity.is_unambiguous (tiny ()));
  Alcotest.(check bool) "amb ambiguous" false (Ambiguity.is_unambiguous (amb ()));
  Alcotest.(check (option string))
    "witness" (Some "aaa")
    (Ambiguity.ambiguous_witness (amb ()))

let test_count_unambiguous_dp () =
  (* example4 is unambiguous: the DP counts exactly |L_n| *)
  List.iter
    (fun n ->
       let g = Cnf.of_grammar (Constructions.example4 n) in
       Alcotest.check bn
         (Printf.sprintf "DP count |L_%d|" n)
         (Ln.cardinal n)
         (Count.words_unambiguous g (2 * n)))
    [ 1; 2; 3; 4; 5 ]

let test_count_ambiguous_overcounts () =
  (* example3 is ambiguous: derivation counting strictly exceeds |L| *)
  let g = Cnf.of_grammar (Constructions.example3 1) in
  let derivs = Count.words_unambiguous g 6 in
  let words = Count.words_by_enumeration g in
  Alcotest.(check bool)
    (Printf.sprintf "derivations %s > words %s" (BN.to_string derivs)
       (BN.to_string words))
    true
    (BN.compare derivs words > 0)

let test_enumerate () =
  let g = Constructions.example4 2 in
  let words = List.of_seq (Enumerate.words g) in
  Alcotest.check lang "enumerates L_2" (Ln.language 2) (Lang.of_list words);
  Alcotest.(check int) "no duplicates" (Lang.cardinal (Ln.language 2))
    (List.length words);
  (* unambiguous grammars need no dedup: derivation_words already distinct *)
  let dwords = List.of_seq (Enumerate.derivation_words g) in
  Alcotest.(check int) "derivations = words" (List.length words)
    (List.length dwords)

let test_enumerate_ambiguous_repeats () =
  let g = Constructions.example3 1 in
  let dwords = List.of_seq (Enumerate.derivation_words g) in
  let words = List.of_seq (Enumerate.words g) in
  Alcotest.(check bool) "repeats present" true
    (List.length dwords > List.length words);
  Alcotest.check lang "words = L_3" (Ln.language 3) (Lang.of_list words)

(* --- the paper's constructions ----------------------------------------- *)

let test_example3_language () =
  List.iter
    (fun t ->
       let n = (1 lsl t) + 1 in
       Alcotest.check lang
         (Printf.sprintf "G_%d accepts L_%d" t n)
         (Ln.language n)
         (Analysis.language_exn (Constructions.example3 t)))
    [ 0; 1 ]

let test_example3_size_linear () =
  let sizes = List.map (fun t -> G.size (Constructions.example3 t)) [ 1; 2; 4; 8 ] in
  (match sizes with
   | [ s1; s2; s4; s8 ] ->
     Alcotest.(check bool) "monotone" true (s1 < s2 && s2 < s4 && s4 < s8);
     (* Θ(t): constant increments *)
     Alcotest.(check int) "linear growth" (s8 - s4) (2 * (s4 - s2))
   | _ -> assert false)

let test_example3_ambiguous () =
  Alcotest.(check bool) "G_1 ambiguous" false
    (Ambiguity.is_unambiguous (Constructions.example3 1))

let test_log_cfg_language () =
  List.iter
    (fun n ->
       Alcotest.check lang
         (Printf.sprintf "log_cfg %d accepts L_%d" n n)
         (Ln.language n)
         (Analysis.language_exn (Constructions.log_cfg n)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_log_cfg_size_logarithmic () =
  (* size grows like log n: doubling n adds roughly a constant *)
  let size n = G.size (Constructions.log_cfg n) in
  let s16 = size 16 and s256 = size 256 and s4096 = size 4096 in
  Alcotest.(check bool)
    (Printf.sprintf "log growth: %d %d %d" s16 s256 s4096)
    true
    (s256 - s16 < 8 * (s16 + 1) && s4096 - s256 < 2 * (s256 - s16 + 20));
  (* explicit sanity ceiling: c·log n for a small c *)
  List.iter
    (fun n ->
       Alcotest.(check bool)
         (Printf.sprintf "size(log_cfg %d) = %d <= 40·log2 n + 40" n (size n))
         true
         (size n <= (40 * Ucfg_util.Prelude.log2_ceil n) + 40))
    [ 2; 3; 7; 16; 100; 1000; 4096 ]

let test_example4_language_and_unambiguity () =
  List.iter
    (fun n ->
       let g = Constructions.example4 n in
       Alcotest.check lang
         (Printf.sprintf "example4 %d accepts L_%d" n n)
         (Ln.language n) (Analysis.language_exn g);
       Alcotest.(check bool)
         (Printf.sprintf "example4 %d unambiguous" n)
         true (Ambiguity.is_unambiguous g))
    [ 1; 2; 3; 4; 5 ]

let test_example4_size_exponential () =
  let size n = G.size (Constructions.example4 n) in
  (* doubling n should far more than double the size *)
  Alcotest.(check bool) "exponential" true
    (size 12 > 100 * size 6 / 10 * 4);
  Alcotest.(check bool) "2^(n-1) rules at level n" true
    (G.rule_count (Constructions.example4 10) >= 1 lsl 9)

let test_example4_literal_undergenerates () =
  (* the executable exhibit of the reproduction finding: the paper's
     literal Example 4 misses words whose early pairs are (b,b) *)
  List.iter
    (fun n ->
       let g = Constructions.example4_literal n in
       let lit = Analysis.language_exn g in
       Alcotest.(check bool)
         (Printf.sprintf "literal ⊊ L_%d" n)
         true
         (Lang.subset lit (Ln.language n)
          && not (Lang.equal lit (Ln.language n)));
       (* what exists is still unambiguous *)
       Alcotest.(check bool) "literal unambiguous" true
         (Ambiguity.is_unambiguous g))
    [ 2; 3; 4 ];
  Alcotest.(check bool) "baba missing at n=2" false
    (Lang.mem "baba" (Analysis.language_exn (Constructions.example4_literal 2)));
  Alcotest.(check bool) "baba in L_2" true (Ln.mem 2 "baba");
  (* n = 1 has no earlier positions: literal and corrected coincide *)
  Alcotest.check lang "n=1 coincides"
    (Analysis.language_exn (Constructions.example4 1))
    (Analysis.language_exn (Constructions.example4_literal 1))

let test_of_language () =
  let l = Ln.language 2 in
  let g = Constructions.of_language Alphabet.binary l in
  Alcotest.check lang "trivial grammar" l (Analysis.language_exn g);
  Alcotest.(check int) "size = total length" (4 * Lang.cardinal l) (G.size g);
  Alcotest.(check bool) "unambiguous" true (Ambiguity.is_unambiguous g)

let test_sigma_chain () =
  let g = Constructions.sigma_chain Alphabet.binary 3 in
  Alcotest.check lang "Σ^3" (Lang.full Alphabet.binary 3)
    (Analysis.language_exn g);
  Alcotest.(check bool) "unambiguous" true (Ambiguity.is_unambiguous g)

(* --- Lemma 10 transform ------------------------------------------------- *)

let test_length_annotate_preserves () =
  List.iter
    (fun (name, g) ->
       let ann = Length_annotate.annotate g in
       Alcotest.check lang
         (name ^ ": language preserved")
         (Analysis.language_exn g)
         (Analysis.language_exn ann.Length_annotate.grammar))
    [ ("tiny", tiny ());
      ("log_cfg(3)", Constructions.log_cfg 3);
      ("example3(1)", Constructions.example3 1);
      ("example4(2)", Constructions.example4 2) ]

let test_length_annotate_size_bound () =
  (* Lemma 10: |G'| <= n·|G| where G is the CNF grammar *)
  List.iter
    (fun (name, g) ->
       let cnf = Cnf.ensure g in
       let ann = Length_annotate.annotate g in
       let n = ann.Length_annotate.word_length in
       Alcotest.(check bool)
         (Printf.sprintf "%s: %d <= %d·%d" name
            (G.size ann.Length_annotate.grammar)
            n (G.size cnf))
         true
         (G.size ann.Length_annotate.grammar <= n * G.size cnf))
    [ ("tiny", tiny ()); ("log_cfg(4)", Constructions.log_cfg 4);
      ("example4(3)", Constructions.example4 3) ]

let test_length_annotate_unambiguity_preserved () =
  let ann = Length_annotate.annotate (Constructions.example4 3) in
  Alcotest.(check bool) "still unambiguous" true
    (Ambiguity.is_unambiguous ann.Length_annotate.grammar)

let test_length_annotate_positions () =
  (* the index really is the 1-based start position of the span *)
  let ann = Length_annotate.annotate (Constructions.log_cfg 2) in
  let g = ann.Length_annotate.grammar in
  let n = ann.Length_annotate.word_length in
  Array.iteri
    (fun a (_, i) ->
       let len = ann.Length_annotate.span_length.(a) in
       Alcotest.(check bool)
         (Printf.sprintf "span (%d,%d) inside word" i len)
         true
         (i >= 1 && i + len - 1 <= n))
    ann.Length_annotate.origin;
  Alcotest.(check int) "start at position 1" 1
    (snd ann.Length_annotate.origin.(G.start g))

(* --- textual grammar format ----------------------------------------------- *)

let test_grammar_io_parse () =
  let g =
    Grammar_io.parse Alphabet.binary
      {|# the tiny grammar
start: <S>
<S> -> <A> <B> | <B> <A>
<A> -> a
<B> -> b|}
  in
  Alcotest.check lang "language" (Lang.of_list [ "ab"; "ba" ])
    (Analysis.language_exn g);
  Alcotest.(check int) "size" 6 (G.size g)

let test_grammar_io_epsilon () =
  let g = Grammar_io.parse Alphabet.binary "start: <S>\n<S> -> ε | a" in
  Alcotest.check lang "with ε" (Lang.of_list [ ""; "a" ])
    (Analysis.language_exn g)

let test_grammar_io_roundtrip () =
  List.iter
    (fun (name, g) ->
       let g' = Grammar_io.parse (G.alphabet g) (Grammar_io.to_string g) in
       Alcotest.check lang (name ^ " roundtrip")
         (Analysis.language_exn g) (Analysis.language_exn g'))
    [
      ("tiny", tiny ()); ("log_cfg 4", Constructions.log_cfg 4);
      ("example3 1", Constructions.example3 1);
      ("example4 2", Constructions.example4 2);
    ]

let test_grammar_io_errors () =
  List.iter
    (fun s ->
       match Grammar_io.parse Alphabet.binary s with
       | exception Invalid_argument _ -> ()
       | _ -> Alcotest.failf "expected parse error on %S" s)
    [
      "<S> -> a";            (* no start *)
      "start: <S>\n<S> -> z"; (* foreign terminal *)
      "start: <S>\nnonsense"; (* bad line *)
      "start: a";             (* start must be a nonterminal *)
    ]

(* --- closure operations -------------------------------------------------- *)

let test_ops_union () =
  let a = Constructions.of_language Alphabet.binary (Lang.of_list [ "ab" ]) in
  let b = Constructions.of_language Alphabet.binary (Lang.of_list [ "ba"; "bb" ]) in
  let u = Ops.union a b in
  Alcotest.check lang "union" (Lang.of_list [ "ab"; "ba"; "bb" ])
    (Analysis.language_exn u);
  Alcotest.(check int) "size additive" (G.size a + G.size b + 2) (G.size u);
  (* disjoint operands keep unambiguity *)
  Alcotest.(check bool) "unambiguous" true (Ambiguity.is_unambiguous u)

let test_ops_union_overlap_ambiguous () =
  let a = Constructions.of_language Alphabet.binary (Lang.of_list [ "ab"; "aa" ]) in
  let b = Constructions.of_language Alphabet.binary (Lang.of_list [ "ab" ]) in
  Alcotest.(check bool) "overlap makes it ambiguous" false
    (Ambiguity.is_unambiguous (Ops.union a b))

let test_ops_concat () =
  let a = Constructions.sigma_chain Alphabet.binary 2 in
  let b = Constructions.of_language Alphabet.binary (Lang.of_list [ "a" ]) in
  let c = Ops.concat a b in
  Alcotest.check lang "Σ²·a"
    (Lang.concat (Lang.full Alphabet.binary 2) (Lang.singleton "a"))
    (Analysis.language_exn c);
  Alcotest.(check bool) "unambiguous" true (Ambiguity.is_unambiguous c)

(* --- direct access (unranking) ------------------------------------------- *)

let test_direct_access_roundtrip () =
  let g = Cnf.of_grammar (Constructions.example4 3) in
  let da = Direct_access.create g ~max_len:6 in
  let total = Option.get (BN.to_int (Direct_access.total da)) in
  Alcotest.(check int) "total = |L_3|" 37 total;
  (* nth is a bijection onto the language, and rank inverts it *)
  let seen = Hashtbl.create 64 in
  for i = 0 to total - 1 do
    match Direct_access.nth da (BN.of_int i) with
    | None -> Alcotest.failf "nth %d missing" i
    | Some w ->
      if Hashtbl.mem seen w then Alcotest.failf "duplicate %s" w;
      Hashtbl.add seen w ();
      if not (Ln.mem 3 w) then Alcotest.failf "nth %d = %s not in L_3" i w;
      (match Direct_access.rank da w with
       | Some r when BN.equal r (BN.of_int i) -> ()
       | Some r ->
         Alcotest.failf "rank(nth %d) = %s" i (BN.to_string r)
       | None -> Alcotest.failf "rank %s missing" w)
  done;
  Alcotest.(check (option string)) "out of range" None
    (Direct_access.nth da (BN.of_int total));
  Alcotest.(check bool) "rank of non-member" true
    (Direct_access.rank da "bbbbbb" = None)

let test_direct_access_sampling () =
  let g = Cnf.of_grammar (Constructions.example4 2) in
  let da = Direct_access.create g ~max_len:4 in
  let rng = Ucfg_util.Rng.create 9 in
  let counts = Hashtbl.create 7 in
  let draws = 7000 in
  for _ = 1 to draws do
    match Direct_access.sample da rng with
    | Some w ->
      Hashtbl.replace counts w (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))
    | None -> Alcotest.fail "sample failed"
  done;
  Alcotest.(check int) "all 7 words drawn" 7 (Hashtbl.length counts);
  Hashtbl.iter
    (fun w c ->
       (* uniform: expect 1000 each; allow generous slack *)
       if c < 700 || c > 1300 then
         Alcotest.failf "word %s drawn %d times (expected ~1000)" w c)
    counts

let test_direct_access_ambiguous_counts_derivations () =
  let g = Cnf.of_grammar (Constructions.example3 1) in
  (* 37 words, but more derivations: direct access indexes derivations *)
  let da = Direct_access.create g ~max_len:6 in
  Alcotest.(check bool) "more derivations than words" true
    (BN.compare (Direct_access.total da) (BN.of_int 37) > 0)

(* --- SLPs (grammar-based compression) ------------------------------------ *)

let test_slp_basic () =
  let w = "abbaabab" in
  let s = Slp.of_word w in
  Alcotest.(check string) "roundtrip" w (Slp.to_word s);
  Alcotest.(check string) "length" "8" (BN.to_string (Slp.length s));
  Alcotest.check_raises "forward reference"
    (Invalid_argument "Slp.make: children must precede their node") (fun () ->
        ignore (Slp.make ~nodes:[| Slp.Pair (0, 0); Slp.Char 'a' |] ~root:0))

let test_slp_power () =
  let base = Slp.of_word "ab" in
  let big = Slp.power base (1 lsl 20) in
  Alcotest.(check bool) "tiny program" true (Slp.size big < 64);
  Alcotest.check (Alcotest.testable BN.pp BN.equal) "length 2^21"
    (BN.two_pow 21) (Slp.length big);
  (* random access without expansion *)
  Alcotest.(check char) "char 0" 'a' (Slp.char_at big BN.zero);
  Alcotest.(check char) "char 1" 'b' (Slp.char_at big BN.one);
  Alcotest.(check char) "char at 2^20 (even)" 'a'
    (Slp.char_at big (BN.two_pow 20));
  Alcotest.(check char) "last" 'b' (Slp.char_at big (BN.pred (BN.two_pow 21)))

let test_slp_fibonacci () =
  let f10 = Slp.fibonacci 10 in
  (* |F_10| = Fib(10) = 55; F_k starts "abaab..." for k >= 5 *)
  Alcotest.check (Alcotest.testable BN.pp BN.equal) "length Fib 10"
    (BN.of_int 55) (Slp.length f10);
  let w = Slp.to_word f10 in
  Alcotest.(check string) "prefix" "abaab" (String.sub w 0 5);
  (* the defining recurrence: F_k = F_{k-1} F_{k-2} *)
  Alcotest.(check string) "recurrence" w
    (Slp.to_word (Slp.concat (Slp.fibonacci 9) (Slp.fibonacci 8)));
  Alcotest.(check bool) "equal_naive agrees" true
    (Slp.equal_naive f10 (Slp.concat (Slp.fibonacci 9) (Slp.fibonacci 8)));
  (* linear size for exponential length *)
  Alcotest.(check bool) "small program" true (Slp.size (Slp.fibonacci 40) < 100)

let test_slp_compression () =
  (* hash-consing compresses aligned repetition *)
  let w = String.concat "" (List.init 64 (fun _ -> "ab")) in
  let s = Slp.of_word w in
  Alcotest.(check bool)
    (Printf.sprintf "compressed: %d nodes for %d chars" (Slp.size s)
       (String.length w))
    true
    (Slp.size s < 20);
  Alcotest.(check string) "roundtrip" w (Slp.to_word s)

let test_slp_char_at_agrees () =
  let w = "abbabaabbaababba" in
  let s = Slp.of_word w in
  String.iteri
    (fun i c ->
       Alcotest.(check char)
         (Printf.sprintf "char %d" i)
         c
         (Slp.char_at s (BN.of_int i)))
    w

let test_slp_to_grammar () =
  let s = Slp.power (Slp.of_word "ab") 4 in
  let g = Slp.to_grammar Alphabet.binary s in
  Alcotest.check lang "singleton language" (Lang.singleton "abababab")
    (Analysis.language_exn g);
  Alcotest.(check bool) "unambiguous" true (Ambiguity.is_unambiguous g)

(* --- inside–outside occurrence counts -------------------------------------- *)

let test_occurrence_counts_unambiguous () =
  (* Observation 11, quantitatively: on a uCFG every occurrence count is 1
     and the marked spans are exactly the unique parse tree's spans *)
  let g = Cnf.of_grammar (Constructions.example4 3) in
  let w = "aabaab" in
  let occs = Cyk.occurrence_counts g w in
  List.iter
    (fun (_, _, _, c) ->
       if not (BN.equal c BN.one) then Alcotest.fail "count != 1 on a uCFG")
    occs;
  (* the spans reconstruct the unique tree: compare against the parse *)
  let tree = Option.get (Cyk.parse g w) in
  let rec spans pos = function
    | Parse_tree.Leaf _ -> []
    | Parse_tree.Node (a, children) ->
      let len = Parse_tree.leaf_count (Parse_tree.Node (a, children)) in
      let _, below =
        List.fold_left
          (fun (p, acc) child ->
             (p + Parse_tree.leaf_count child, acc @ spans p child))
          (pos, []) children
      in
      (a, pos, len) :: below
  in
  let tree_spans = List.sort_uniq compare (spans 0 tree) in
  let occ_spans =
    List.sort_uniq compare (List.map (fun (a, p, l, _) -> (a, p, l)) occs)
  in
  Alcotest.(check (list (triple int int int))) "spans = tree spans" tree_spans
    occ_spans

let test_occurrence_counts_ambiguous () =
  (* on an ambiguous grammar, the root occurrence count is the tree count *)
  let g = Cnf.of_grammar (Constructions.example3 1) in
  let w = "aaaaaa" in
  let total = Cyk.count_trees g w in
  let root_occ =
    List.find_map
      (fun (a, p, l, c) ->
         if a = G.start g && p = 0 && l = 6 then Some c else None)
      (Cyk.occurrence_counts g w)
  in
  Alcotest.(check bool) "root count = #trees" true
    (match root_occ with Some c -> BN.equal c total | None -> false)

(* --- polynomial semiring (Parikh census) ----------------------------------- *)

module WPoly = Weighted.Make (Semiring.Polynomial)

let census_weight r =
  match r.G.rhs with
  | [ G.T 'a' ] -> Semiring.Polynomial.x
  | _ -> Semiring.Polynomial.one

let test_polynomial_census () =
  (* the generating polynomial of L_3 by number of a's, vs enumeration *)
  let n = 3 in
  let g = Cnf.of_grammar (Constructions.example4 n) in
  let poly = WPoly.length_weight ~rule_weight:census_weight g (2 * n) in
  let by_count = Array.make ((2 * n) + 1) 0 in
  Lang.iter
    (fun w ->
       let k =
         String.fold_left (fun acc c -> if c = 'a' then acc + 1 else acc) 0 w
       in
       by_count.(k) <- by_count.(k) + 1)
    (Ln.language n);
  Array.iteri
    (fun k expected ->
       if
         not
           (BN.equal
              (Semiring.Polynomial.coeff poly k)
              (BN.of_int expected))
       then
         Alcotest.failf "census coefficient %d: got %s, want %d" k
           (BN.to_string (Semiring.Polynomial.coeff poly k))
           expected)
    by_count

let test_polynomial_algebra () =
  let open Semiring.Polynomial in
  (* (1 + x)² = 1 + 2x + x² *)
  let p = plus one x in
  Alcotest.(check bool) "square" true
    (equal (times p p)
       [| BN.one; BN.of_int 2; BN.one |]);
  Alcotest.(check bool) "zero annihilates" true (equal (times zero p) zero);
  Alcotest.(check bool) "trailing zeros ignored" true
    (equal [| BN.one; BN.zero |] [| BN.one |])

(* --- semiring-weighted parsing -------------------------------------------- *)

module WBool = Weighted.Make (Semiring.Boolean)
module WCount = Weighted.Make (Semiring.Counting)
module WTrop = Weighted.Make (Semiring.Tropical)
module WProb = Weighted.Make (Semiring.Inside)
module WProv = Weighted.Make (Semiring.Provenance)

let test_weighted_boolean_is_recognition () =
  let g = Cnf.of_grammar (Constructions.log_cfg 3) in
  Seq.iter
    (fun w ->
       if WBool.word_weight g w <> Cyk.recognize g w then
         Alcotest.failf "boolean weight disagrees on %s" w)
    (Word.enumerate Alphabet.binary 6)

let test_weighted_counting_is_tree_count () =
  let g = Cnf.of_grammar (Constructions.example3 1) in
  Seq.iter
    (fun w ->
       if not (BN.equal (WCount.word_weight g w) (Cyk.count_trees g w)) then
         Alcotest.failf "counting weight disagrees on %s" w)
    (Word.enumerate Alphabet.binary 6)

let test_weighted_tropical_cnf_tree_size () =
  (* with weight 1 per rule, the cheapest derivation of a length-ℓ word in
     CNF uses exactly 2ℓ - 1 rules *)
  let g = Cnf.of_grammar (Constructions.log_cfg 3) in
  let cost = WTrop.word_weight ~rule_weight:(fun _ -> Some 1) g "aabaab" in
  Alcotest.(check (option int)) "2·6 - 1 rules" (Some 11) cost;
  Alcotest.(check (option int)) "non-member = ∞" None
    (WTrop.word_weight ~rule_weight:(fun _ -> Some 1) g "aabbba")

let test_weighted_inside_probability () =
  (* S -> AB; A -> a | b (½ each); B -> b: P(ab) = ½ *)
  let g =
    G.make ~alphabet:Alphabet.binary ~names:[| "S"; "A"; "B" |]
      ~rules:
        [
          { G.lhs = 0; rhs = [ G.N 1; G.N 2 ] };
          { G.lhs = 1; rhs = [ G.T 'a' ] };
          { G.lhs = 1; rhs = [ G.T 'b' ] };
          { G.lhs = 2; rhs = [ G.T 'b' ] };
        ]
      ~start:0
  in
  let weight r =
    match r.G.rhs with [ G.T ('a' | 'b') ] when r.G.lhs = 1 -> 0.5 | _ -> 1.0
  in
  Alcotest.(check bool) "P(ab) = 0.5" true
    (Semiring.Inside.equal 0.5 (WProb.word_weight ~rule_weight:weight g "ab"));
  (* the two length-2 words have total inside weight 1 *)
  Alcotest.(check bool) "Σ = 1" true
    (Semiring.Inside.equal 1.0 (WProb.length_weight ~rule_weight:weight g 2))

let test_weighted_provenance () =
  (* the provenance of a word in the ambiguous grammar lists one tag
     multiset per parse tree *)
  let g = Cnf.of_grammar (Constructions.example3 1) in
  let rules_arr = Array.of_list (G.rules g) in
  let tag_of r =
    let rec find i = if rules_arr.(i) = r then i else find (i + 1) in
    find 0
  in
  let prov =
    WProv.word_weight
      ~rule_weight:(fun r -> Semiring.Provenance.of_tag (tag_of r))
      g "aaaaaa"
  in
  Alcotest.(check int) "one derivation set per tree"
    (Option.get (BN.to_int (Cyk.count_trees g "aaaaaa")))
    (List.length prov)

let test_weighted_length_consistency () =
  (* Σ over length = the Count module's derivation counts *)
  let g = Cnf.of_grammar (Constructions.example4 4) in
  let by_len = Count.derivations_by_length g 8 in
  for l = 0 to 8 do
    if not (BN.equal by_len.(l) (WCount.length_weight g l)) then
      Alcotest.failf "length %d mismatch" l
  done

(* --- ambiguity profile ---------------------------------------------------- *)

let test_ambiguity_profile () =
  let p = Ambiguity.profile (Constructions.example3 1) in
  Alcotest.(check int) "37 words" 37 p.Ambiguity.word_total;
  Alcotest.(check bool) "some ambiguous words" true (p.Ambiguity.ambiguous_words > 0);
  Alcotest.(check bool) "max degree >= 2" true
    (BN.compare p.Ambiguity.max_trees (BN.of_int 2) >= 0);
  (* histogram masses add up to the word count *)
  Alcotest.(check int) "histogram total" 37
    (Ucfg_util.Prelude.sum_int (List.map snd p.Ambiguity.histogram));
  let unam = Ambiguity.profile (Constructions.example4 3) in
  Alcotest.(check int) "uCFG: no ambiguous words" 0 unam.Ambiguity.ambiguous_words;
  Alcotest.(check (list (pair string int))) "degenerate histogram"
    [ ("1", 37) ] unam.Ambiguity.histogram

(* --- properties on random grammars ------------------------------------- *)

let arb_seed = QCheck.int_range 0 100_000

let prop_cnf_preserves_language_random =
  QCheck.Test.make ~name:"CNF conversion preserves language (random)" ~count:60
    arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g =
         Random_grammar.general rng ~nonterminals:4 ~max_rules:3 ~max_rhs_len:3
       in
       match Analysis.language ~max_len:30 g with
       | Error _ -> QCheck.assume_fail ()
       | Ok l -> Lang.equal l (Analysis.language_exn ~max_len:30 (Cnf.of_grammar g)))

let prop_trim_preserves_language_random =
  QCheck.Test.make ~name:"trim preserves language (random)" ~count:60 arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g =
         Random_grammar.general rng ~nonterminals:5 ~max_rules:3 ~max_rhs_len:3
       in
       match Analysis.language ~max_len:30 g with
       | Error _ -> QCheck.assume_fail ()
       | Ok l -> Lang.equal l (Analysis.language_exn ~max_len:30 (Trim.trim g)))

let prop_cyk_matches_count_word =
  QCheck.Test.make ~name:"CYK tree counts match general counting on CNF" ~count:40
    arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g = Random_grammar.fixed_length rng ~word_len:4 ~variants:2 in
       (* g is already CNF by construction *)
       QCheck.assume (G.is_cnf g);
       Seq.for_all
         (fun w -> BN.equal (Cyk.count_trees g w) (Count_word.trees g w))
         (Word.enumerate Alphabet.binary 4))

let prop_fixed_length_grammar_is_fixed_length =
  QCheck.Test.make ~name:"random fixed-length grammars have fixed length"
    ~count:40 arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g = Random_grammar.fixed_length rng ~word_len:5 ~variants:2 in
       match Analysis.fixed_lengths g with
       | Some (g', lens) -> lens.(G.start g') = 5
       | None -> false)

let prop_earley_equals_membership =
  QCheck.Test.make ~name:"Earley decides membership (random)" ~count:30 arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g =
         Random_grammar.general rng ~nonterminals:4 ~max_rules:3 ~max_rhs_len:2
       in
       match Analysis.language ~max_len:16 g with
       | Error _ -> QCheck.assume_fail ()
       | Ok l ->
         Seq.for_all
           (fun w -> Earley.recognize g w = Lang.mem w l)
           (Word.enumerate Alphabet.binary 3))

let prop_derivations_dominate_words =
  QCheck.Test.make ~name:"derivation counts dominate word counts" ~count:40
    arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g = Random_grammar.fixed_length rng ~word_len:5 ~variants:3 in
       let derivs = Count.words_unambiguous g 5 in
       let words = Count.words_by_enumeration g in
       BN.compare derivs words >= 0)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cnf_preserves_language_random;
      prop_trim_preserves_language_random;
      prop_cyk_matches_count_word;
      prop_fixed_length_grammar_is_fixed_length;
      prop_earley_equals_membership;
      prop_derivations_dominate_words;
    ]

let () =
  Alcotest.run "ucfg_cfg"
    [
      ( "grammar",
        [
          Alcotest.test_case "size measure" `Quick test_size_measure;
          Alcotest.test_case "duplicate rules collapse" `Quick
            test_duplicate_rules_collapse;
          Alcotest.test_case "dependency edges deduplicated" `Quick
            test_dependency_edges_deduplicated;
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "builder" `Quick test_builder;
        ] );
      ( "trim",
        [
          Alcotest.test_case "removes useless" `Quick test_trim_removes_useless;
          Alcotest.test_case "empty language" `Quick test_trim_empty_language;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "language fixpoint" `Quick test_language_fixpoint;
          Alcotest.test_case "overflow reporting" `Quick test_language_overflow;
          Alcotest.test_case "finiteness" `Quick test_is_finite;
          Alcotest.test_case "total tree count" `Quick test_count_trees_total;
          Alcotest.test_case "witness" `Quick test_witness;
          Alcotest.test_case "fixed lengths" `Quick test_fixed_lengths;
          Alcotest.test_case "fixed lengths rejects" `Quick
            test_fixed_lengths_rejects;
        ] );
      ( "cnf",
        [
          Alcotest.test_case "preserves language" `Quick
            test_cnf_preserves_language;
          Alcotest.test_case "size bound" `Quick test_cnf_size_bound;
          Alcotest.test_case "epsilon handling" `Quick test_cnf_epsilon;
          Alcotest.test_case "nullable" `Quick test_nullable;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "cyk recognize" `Quick test_cyk_recognize;
          Alcotest.test_case "tree counting" `Quick test_cyk_count_ambiguous;
          Alcotest.test_case "short-word memo keys" `Quick
            test_count_word_short_word_memo;
          Alcotest.test_case "cyk parse validity" `Quick test_cyk_parse_valid;
          Alcotest.test_case "all trees (Figure 1)" `Quick test_cyk_all_trees;
          Alcotest.test_case "earley agrees" `Quick test_earley_agrees_with_cyk;
          Alcotest.test_case "earley epsilon" `Quick test_earley_epsilon_rules;
        ] );
      ( "ambiguity+counting",
        [
          Alcotest.test_case "decisions" `Quick test_ambiguity_decisions;
          Alcotest.test_case "uCFG DP counting" `Quick test_count_unambiguous_dp;
          Alcotest.test_case "ambiguous overcounts" `Quick
            test_count_ambiguous_overcounts;
          Alcotest.test_case "enumerate unambiguous" `Quick test_enumerate;
          Alcotest.test_case "enumerate ambiguous repeats" `Quick
            test_enumerate_ambiguous_repeats;
        ] );
      ( "constructions",
        [
          Alcotest.test_case "example3 language" `Quick test_example3_language;
          Alcotest.test_case "example3 size Θ(t)" `Quick test_example3_size_linear;
          Alcotest.test_case "example3 ambiguous" `Quick test_example3_ambiguous;
          Alcotest.test_case "log_cfg language" `Slow test_log_cfg_language;
          Alcotest.test_case "log_cfg size Θ(log n)" `Quick
            test_log_cfg_size_logarithmic;
          Alcotest.test_case "example4 language+unambiguity" `Quick
            test_example4_language_and_unambiguity;
          Alcotest.test_case "example4 size 2^Θ(n)" `Quick
            test_example4_size_exponential;
          Alcotest.test_case "example4 literal under-generates" `Quick
            test_example4_literal_undergenerates;
          Alcotest.test_case "of_language" `Quick test_of_language;
          Alcotest.test_case "sigma_chain" `Quick test_sigma_chain;
        ] );
      ( "grammar-io",
        [
          Alcotest.test_case "parse" `Quick test_grammar_io_parse;
          Alcotest.test_case "epsilon" `Quick test_grammar_io_epsilon;
          Alcotest.test_case "roundtrip" `Quick test_grammar_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_grammar_io_errors;
        ] );
      ( "ops",
        [
          Alcotest.test_case "union" `Quick test_ops_union;
          Alcotest.test_case "union overlap" `Quick
            test_ops_union_overlap_ambiguous;
          Alcotest.test_case "concat" `Quick test_ops_concat;
        ] );
      ( "direct-access",
        [
          Alcotest.test_case "nth/rank bijection" `Quick
            test_direct_access_roundtrip;
          Alcotest.test_case "uniform sampling" `Quick
            test_direct_access_sampling;
          Alcotest.test_case "ambiguous counts derivations" `Quick
            test_direct_access_ambiguous_counts_derivations;
        ] );
      ( "slp",
        [
          Alcotest.test_case "basic" `Quick test_slp_basic;
          Alcotest.test_case "power (2^20 word)" `Quick test_slp_power;
          Alcotest.test_case "fibonacci words" `Quick test_slp_fibonacci;
          Alcotest.test_case "hash-consing compresses" `Quick
            test_slp_compression;
          Alcotest.test_case "char_at" `Quick test_slp_char_at_agrees;
          Alcotest.test_case "to_grammar" `Quick test_slp_to_grammar;
        ] );
      ( "inside-outside",
        [
          Alcotest.test_case "uCFG spans = unique tree" `Quick
            test_occurrence_counts_unambiguous;
          Alcotest.test_case "ambiguous root count" `Quick
            test_occurrence_counts_ambiguous;
        ] );
      ( "polynomial census",
        [
          Alcotest.test_case "L_3 by #a's" `Quick test_polynomial_census;
          Alcotest.test_case "algebra" `Quick test_polynomial_algebra;
        ] );
      ( "weighted (semirings)",
        [
          Alcotest.test_case "boolean = recognition" `Quick
            test_weighted_boolean_is_recognition;
          Alcotest.test_case "counting = tree counts" `Quick
            test_weighted_counting_is_tree_count;
          Alcotest.test_case "tropical tree size" `Quick
            test_weighted_tropical_cnf_tree_size;
          Alcotest.test_case "inside probability" `Quick
            test_weighted_inside_probability;
          Alcotest.test_case "provenance" `Quick test_weighted_provenance;
          Alcotest.test_case "length consistency" `Quick
            test_weighted_length_consistency;
        ] );
      ( "ambiguity-profile",
        [ Alcotest.test_case "histogram" `Quick test_ambiguity_profile ] );
      ( "length-annotate (Lemma 10)",
        [
          Alcotest.test_case "preserves language" `Quick
            test_length_annotate_preserves;
          Alcotest.test_case "size bound n·|G|" `Quick
            test_length_annotate_size_bound;
          Alcotest.test_case "preserves unambiguity" `Quick
            test_length_annotate_unambiguity_preserved;
          Alcotest.test_case "position semantics" `Quick
            test_length_annotate_positions;
        ] );
      ("properties", qtests);
    ]
